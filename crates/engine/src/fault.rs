//! Per-lane fault injection plans.
//!
//! A [`FaultPlan`] names defects to inject into individual lanes of a
//! [`BatchExec`](crate::BatchExec): permanent stuck-at-0 / stuck-at-1
//! faults and single-cycle transient bit flips, each pinned to one
//! `(net, lane)` coordinate. The executor compiles an installed plan
//! into dense AND / OR / XOR lane-mask tables applied inside its write
//! path, so 64–256 *different* faulty circuits evaluate in one pass
//! while lane 0 (or any designated lane) stays fault-free as the golden
//! reference. An empty plan installs no tables at all — the nominal
//! hot path is untouched (bench-pinned within 2% by
//! `cargo bench -p syndcim-bench --bench faults`).
//!
//! Semantics (pinned by `tests/faults_variation.rs`):
//!
//! * **Stuck-at** — from installation onward, every value the executor
//!   stores to the net has the lane forced to the stuck value;
//!   installation forces the current value immediately. Toggle
//!   accounting sees the forced values, exactly as if the stuck net
//!   had been driven that way by the circuit.
//! * **Transient flip at cycle `k`** — cycles count `step()` calls
//!   since the plan was installed. During step `k` the lane's value on
//!   the net is inverted (the inversion is visible to downstream logic
//!   in both settle phases, to the sequential capture, and to peeks
//!   after the step returns); the mask is lifted at the start of step
//!   `k + 1`, after which the fault persists only through whatever
//!   state captured it.
//!
//! Validation is strict and up front: [`FaultPlan::validate`] (called
//! by `install_faults`) rejects out-of-range nets or lanes and
//! contradictory stuck-at pairs with a typed [`EngineError`] instead
//! of panicking mid-run.

use std::collections::HashMap;

use syndcim_netlist::NetId;

/// What kind of defect a [`Fault`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Lane is forced to logic 0 from installation onward.
    StuckAt0,
    /// Lane is forced to logic 1 from installation onward.
    StuckAt1,
    /// Lane is inverted for exactly one cycle (`step()` calls counted
    /// from plan installation).
    FlipAtCycle(u64),
}

/// One injected defect: a [`FaultKind`] at a `(net, lane)` coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The net carrying the defect.
    pub net: NetId,
    /// The lane (vector index) the defect is confined to.
    pub lane: usize,
    /// The defect behaviour.
    pub kind: FaultKind,
}

/// A validated-on-install collection of per-lane faults.
///
/// ```
/// use syndcim_engine::FaultPlan;
/// use syndcim_netlist::NetId;
///
/// let mut plan = FaultPlan::new();
/// plan.stuck_at(NetId(3), 1, false) // lane 1: net 3 stuck at 0
///     .stuck_at(NetId(3), 2, true)  // lane 2: net 3 stuck at 1
///     .flip_at(NetId(7), 3, 5);     // lane 3: net 7 flips in cycle 5
/// assert_eq!(plan.len(), 3);
/// assert!(plan.validate(8, 4).is_ok());
/// assert!(plan.validate(8, 2).is_err()); // lanes 2,3 out of range
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (installing it is a no-op and costs nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a stuck-at fault (`value` is the forced logic level).
    pub fn stuck_at(&mut self, net: NetId, lane: usize, value: bool) -> &mut Self {
        let kind = if value { FaultKind::StuckAt1 } else { FaultKind::StuckAt0 };
        self.faults.push(Fault { net, lane, kind });
        self
    }

    /// Add a single-cycle transient flip at `cycle` (counted in
    /// `step()` calls from plan installation).
    pub fn flip_at(&mut self, net: NetId, lane: usize, cycle: u64) -> &mut Self {
        self.faults.push(Fault { net, lane, kind: FaultKind::FlipAtCycle(cycle) });
        self
    }

    /// Add an already-constructed [`Fault`].
    pub fn push(&mut self, fault: Fault) -> &mut Self {
        self.faults.push(fault);
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Check the plan against an executor shape: every net must be a
    /// real net of the program (`< net_count`), every lane an active
    /// lane (`< lanes`), and no `(net, lane)` may carry *both* a
    /// stuck-at-0 and a stuck-at-1 (the contradiction has no
    /// well-defined mask order).
    pub fn validate(&self, net_count: usize, lanes: usize) -> Result<(), EngineError> {
        let mut stuck: HashMap<(u32, usize), bool> = HashMap::new();
        for f in &self.faults {
            if f.net.index() >= net_count {
                return Err(EngineError::NetOutOfRange { net: f.net.index(), net_count });
            }
            if f.lane >= lanes {
                return Err(EngineError::LaneOutOfRange { lane: f.lane, lanes });
            }
            let value = match f.kind {
                FaultKind::StuckAt0 => false,
                FaultKind::StuckAt1 => true,
                FaultKind::FlipAtCycle(_) => continue,
            };
            if let Some(&prev) = stuck.get(&(f.net.0, f.lane)) {
                if prev != value {
                    return Err(EngineError::FaultConflict { net: f.net.index(), lane: f.lane });
                }
            } else {
                stuck.insert((f.net.0, f.lane), value);
            }
        }
        Ok(())
    }
}

/// Typed errors of the batch engine's fallible entry points — fault
/// plans that do not fit the executor, lane-set misuse, and per-lane
/// queries on inactive lanes. Converted into `syndcim_core::FlowError`
/// at the flow layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// A fault names a net outside the compiled program.
    NetOutOfRange {
        /// Offending net index.
        net: usize,
        /// Nets the program actually has.
        net_count: usize,
    },
    /// A fault or query names a lane outside the active lane set.
    LaneOutOfRange {
        /// Offending lane.
        lane: usize,
        /// Active lanes of the executor.
        lanes: usize,
    },
    /// One `(net, lane)` is stuck at both 0 and 1.
    FaultConflict {
        /// Net index of the contradiction.
        net: usize,
        /// Lane of the contradiction.
        lane: usize,
    },
    /// `set_lanes` asked to grow the lane set (only shrinking keeps
    /// the toggle invariant; create a new executor to grow).
    LaneGrow {
        /// Current lane count.
        have: usize,
        /// Requested lane count.
        asked: usize,
    },
    /// `set_lanes` after `enable_lane_toggles` (per-lane storage is
    /// strided by the lane count at enable time).
    LaneTogglesPinned,
    /// `set_lanes` while a fault plan is installed (its masks were
    /// validated against the lane set) — clear the plan first.
    FaultPlanPinned,
    /// A lane set of zero lanes was requested.
    ZeroLanes,
    /// `SYNDCIM_SIMD` (or [`crate::SimdPolicy::parse`]) was given a
    /// value that names no backend.
    SimdUnknown,
    /// A pinned SIMD backend is not supported by this CPU (or this
    /// architecture) — pins fail loudly instead of silently falling
    /// back to the portable words.
    SimdUnsupported {
        /// The backend that was pinned.
        backend: crate::SimdBackend,
    },
    /// The requested lane count exceeds what the selected SIMD policy
    /// can carry in one executor.
    SimdLaneCap {
        /// The widest backend the policy allows.
        backend: crate::SimdBackend,
        /// Requested lane count.
        lanes: usize,
        /// The backend word's lane capacity.
        max: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NetOutOfRange { net, net_count } => {
                write!(f, "fault names net {net} but the program has {net_count} nets")
            }
            EngineError::LaneOutOfRange { lane, lanes } => {
                write!(f, "lane {lane} out of range (executor has {lanes} active lanes)")
            }
            EngineError::FaultConflict { net, lane } => {
                write!(f, "net {net} lane {lane} is stuck at both 0 and 1")
            }
            EngineError::LaneGrow { have, asked } => {
                write!(
                    f,
                    "lane set can only shrink (have {have}, asked {asked}); create a new executor to grow"
                )
            }
            EngineError::LaneTogglesPinned => {
                write!(f, "cannot resize the lane set once per-lane toggle accounting is enabled")
            }
            EngineError::FaultPlanPinned => {
                write!(f, "cannot resize the lane set while a fault plan is installed")
            }
            EngineError::ZeroLanes => write!(f, "lane set cannot be empty"),
            EngineError::SimdUnknown => {
                write!(f, "unknown SYNDCIM_SIMD value (expected portable|avx2|avx512|neon|auto)")
            }
            EngineError::SimdUnsupported { backend } => {
                write!(f, "SIMD backend `{backend}` is not supported by this CPU")
            }
            EngineError::SimdLaneCap { backend, lanes, max } => {
                write!(f, "{lanes} lanes exceed the `{backend}` backend's {max}-lane word")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_out_of_range_and_conflicts() {
        let mut p = FaultPlan::new();
        p.stuck_at(NetId(2), 0, true);
        assert!(p.validate(3, 1).is_ok());
        assert_eq!(p.validate(2, 1), Err(EngineError::NetOutOfRange { net: 2, net_count: 2 }));
        assert_eq!(p.validate(3, 0), Err(EngineError::LaneOutOfRange { lane: 0, lanes: 0 }));

        p.stuck_at(NetId(2), 0, false);
        assert_eq!(p.validate(3, 1), Err(EngineError::FaultConflict { net: 2, lane: 0 }));

        // Duplicate identical stuck-ats and flips never conflict.
        let mut q = FaultPlan::new();
        q.stuck_at(NetId(0), 0, true).stuck_at(NetId(0), 0, true).flip_at(NetId(0), 0, 3);
        assert!(q.validate(1, 1).is_ok());
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(FaultPlan::default().validate(0, 0).is_ok());
    }
}
