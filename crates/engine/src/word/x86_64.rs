//! ISA-native lane words for x86-64: [`W256Avx2`] (`__m256i`, 256
//! lanes) and [`W512Avx512`] (`__m512i`, 512 lanes).
//!
//! Every intrinsic lives in a `#[target_feature]`-annotated leaf
//! function in this module — nothing above the [`LaneWord`] impls ever
//! touches `core::arch` — following the per-ISA-module idiom of
//! ckt-engine's `x86_64`/`aarch64` split. The leaf functions only
//! inline into callers compiled with a superset of their features,
//! which is exactly what [`LaneWord::dispatch`] provides: the executor
//! wraps each settle pass in one `dispatch` call, the
//! `#[target_feature]` trampoline here re-compiles the generic pass
//! with the ISA enabled, and every op's leaf function inlines into it.
//! One runtime dispatch per batch, zero per op.
//!
//! # Safety contract
//!
//! These words are only constructed after runtime detection
//! (`is_x86_feature_detected!`) has confirmed the ISA — enforced by
//! `crate::simd`'s backend selection, which is the sole path into the
//! [`crate::EngineSim`] variants that use them. The cold accessors
//! (`mask`, `get_u64`, lane reads) use plain loads/stores and are safe
//! on any x86-64; only the hot-path leaf functions require the feature.

use core::arch::x86_64::*;

use super::{mask_chunks, LaneWord};

/// 256 simulation lanes in one AVX2 `__m256i` register.
///
/// Bit-identical to [`super::W256`] by construction: the chunk layout
/// is the same `[u64; 4]`, only the AND/OR/XOR/NOT/MUX data path runs
/// on `_mm256_*` intrinsics. Only constructed after `avx2` has been
/// detected (see the module-level safety contract).
#[derive(Clone, Copy)]
#[repr(transparent)]
pub struct W256Avx2(__m256i);

impl W256Avx2 {
    #[inline]
    fn to_array(self) -> [u64; 4] {
        // SAFETY: __m256i and [u64; 4] are both 32 plain data bytes.
        unsafe { core::mem::transmute(self.0) }
    }

    #[inline]
    fn from_array(a: [u64; 4]) -> Self {
        // SAFETY: as above; a plain 32-byte reinterpretation.
        W256Avx2(unsafe { core::mem::transmute::<[u64; 4], __m256i>(a) })
    }
}

impl std::fmt::Debug for W256Avx2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("W256Avx2").field(&self.to_array()).finish()
    }
}

impl PartialEq for W256Avx2 {
    fn eq(&self, other: &Self) -> bool {
        self.to_array() == other.to_array()
    }
}

impl Eq for W256Avx2 {}

#[target_feature(enable = "avx2")]
#[inline]
unsafe fn avx2_dispatch<R>(f: impl FnOnce() -> R) -> R {
    f()
}

#[target_feature(enable = "avx2")]
#[inline]
unsafe fn avx2_and(a: __m256i, b: __m256i) -> __m256i {
    _mm256_and_si256(a, b)
}

#[target_feature(enable = "avx2")]
#[inline]
unsafe fn avx2_or(a: __m256i, b: __m256i) -> __m256i {
    _mm256_or_si256(a, b)
}

#[target_feature(enable = "avx2")]
#[inline]
unsafe fn avx2_xor(a: __m256i, b: __m256i) -> __m256i {
    _mm256_xor_si256(a, b)
}

#[target_feature(enable = "avx2")]
#[inline]
unsafe fn avx2_not(a: __m256i) -> __m256i {
    _mm256_xor_si256(a, _mm256_set1_epi64x(-1))
}

/// `(s & d1) | (!s & d0)` in two ops — `vpandn` computes `!s & d0`
/// directly.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn avx2_mux(d0: __m256i, d1: __m256i, s: __m256i) -> __m256i {
    _mm256_or_si256(_mm256_and_si256(s, d1), _mm256_andnot_si256(s, d0))
}

impl LaneWord for W256Avx2 {
    const LANES: usize = 256;
    const WORDS: usize = 4;

    #[inline]
    fn splat(value: bool) -> Self {
        Self::from_array([u64::splat(value); 4])
    }

    #[inline]
    fn mask(lanes: usize) -> Self {
        Self::from_array(mask_chunks(lanes))
    }

    #[inline]
    fn and(self, other: Self) -> Self {
        // SAFETY: module contract — only constructed with avx2 present.
        W256Avx2(unsafe { avx2_and(self.0, other.0) })
    }

    #[inline]
    fn or(self, other: Self) -> Self {
        // SAFETY: module contract.
        W256Avx2(unsafe { avx2_or(self.0, other.0) })
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        // SAFETY: module contract.
        W256Avx2(unsafe { avx2_xor(self.0, other.0) })
    }

    #[inline]
    fn not(self) -> Self {
        // SAFETY: module contract.
        W256Avx2(unsafe { avx2_not(self.0) })
    }

    #[inline]
    fn mux(d0: Self, d1: Self, s: Self) -> Self {
        // SAFETY: module contract.
        W256Avx2(unsafe { avx2_mux(d0.0, d1.0, s.0) })
    }

    #[inline]
    fn popcount_accum(self, mask: Self, acc: &mut u64) {
        // AVX2 has no vector popcount; the scalar `popcnt` chain over
        // the four chunks is what the portable word compiles to anyway.
        let (a, m) = (self.to_array(), mask.to_array());
        let mut n = 0u32;
        for i in 0..4 {
            n += (a[i] & m[i]).count_ones();
        }
        *acc += n as u64;
    }

    #[inline]
    fn get_u64(self, idx: usize) -> u64 {
        self.to_array()[idx]
    }

    #[inline]
    fn set_u64(&mut self, idx: usize, word: u64) {
        let mut a = self.to_array();
        a[idx] = word;
        *self = Self::from_array(a);
    }

    #[inline(always)]
    fn dispatch<R>(f: impl FnOnce() -> R) -> R {
        debug_assert!(is_x86_feature_detected!("avx2"), "W256Avx2 constructed without AVX2");
        // SAFETY: module contract — this word type exists only on hosts
        // where `avx2` was detected at backend selection.
        unsafe { avx2_dispatch(f) }
    }
}

/// 512 simulation lanes in one AVX-512 `__m512i` register.
///
/// Bit-identical to [`super::W512`] by construction; MUX lowers to a
/// single `vpternlogq` and toggle accounting to `vpopcntq` + a
/// horizontal add (`avx512vpopcntdq`). Only constructed after both
/// `avx512f` and `avx512vpopcntdq` have been detected (see the
/// module-level safety contract).
#[derive(Clone, Copy)]
#[repr(transparent)]
pub struct W512Avx512(__m512i);

impl W512Avx512 {
    #[inline]
    fn to_array(self) -> [u64; 8] {
        // SAFETY: __m512i and [u64; 8] are both 64 plain data bytes.
        unsafe { core::mem::transmute(self.0) }
    }

    #[inline]
    fn from_array(a: [u64; 8]) -> Self {
        // SAFETY: as above; a plain 64-byte reinterpretation.
        W512Avx512(unsafe { core::mem::transmute::<[u64; 8], __m512i>(a) })
    }
}

impl std::fmt::Debug for W512Avx512 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("W512Avx512").field(&self.to_array()).finish()
    }
}

impl PartialEq for W512Avx512 {
    fn eq(&self, other: &Self) -> bool {
        self.to_array() == other.to_array()
    }
}

impl Eq for W512Avx512 {}

#[target_feature(enable = "avx512f,avx512vpopcntdq")]
#[inline]
unsafe fn avx512_dispatch<R>(f: impl FnOnce() -> R) -> R {
    f()
}

#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn avx512_and(a: __m512i, b: __m512i) -> __m512i {
    _mm512_and_si512(a, b)
}

#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn avx512_or(a: __m512i, b: __m512i) -> __m512i {
    _mm512_or_si512(a, b)
}

#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn avx512_xor(a: __m512i, b: __m512i) -> __m512i {
    _mm512_xor_si512(a, b)
}

#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn avx512_not(a: __m512i) -> __m512i {
    _mm512_xor_si512(a, _mm512_set1_epi64(-1))
}

/// `(s & d1) | (!s & d0)` as one `vpternlogq`: with operands
/// `(A, B, C) = (s, d1, d0)`, truth-table byte `0xCA` selects
/// `A ? B : C`.
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn avx512_mux(d0: __m512i, d1: __m512i, s: __m512i) -> __m512i {
    _mm512_ternarylogic_epi64(s, d1, d0, 0xCA)
}

#[target_feature(enable = "avx512f,avx512vpopcntdq")]
#[inline]
unsafe fn avx512_popcount(a: __m512i, m: __m512i) -> u64 {
    _mm512_reduce_add_epi64(_mm512_popcnt_epi64(_mm512_and_si512(a, m))) as u64
}

impl LaneWord for W512Avx512 {
    const LANES: usize = 512;
    const WORDS: usize = 8;

    #[inline]
    fn splat(value: bool) -> Self {
        Self::from_array([u64::splat(value); 8])
    }

    #[inline]
    fn mask(lanes: usize) -> Self {
        Self::from_array(mask_chunks(lanes))
    }

    #[inline]
    fn and(self, other: Self) -> Self {
        // SAFETY: module contract — only constructed with avx512f
        // (and avx512vpopcntdq) present.
        W512Avx512(unsafe { avx512_and(self.0, other.0) })
    }

    #[inline]
    fn or(self, other: Self) -> Self {
        // SAFETY: module contract.
        W512Avx512(unsafe { avx512_or(self.0, other.0) })
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        // SAFETY: module contract.
        W512Avx512(unsafe { avx512_xor(self.0, other.0) })
    }

    #[inline]
    fn not(self) -> Self {
        // SAFETY: module contract.
        W512Avx512(unsafe { avx512_not(self.0) })
    }

    #[inline]
    fn mux(d0: Self, d1: Self, s: Self) -> Self {
        // SAFETY: module contract.
        W512Avx512(unsafe { avx512_mux(d0.0, d1.0, s.0) })
    }

    #[inline]
    fn popcount_accum(self, mask: Self, acc: &mut u64) {
        // SAFETY: module contract.
        *acc += unsafe { avx512_popcount(self.0, mask.0) };
    }

    #[inline]
    fn get_u64(self, idx: usize) -> u64 {
        self.to_array()[idx]
    }

    #[inline]
    fn set_u64(&mut self, idx: usize, word: u64) {
        let mut a = self.to_array();
        a[idx] = word;
        *self = Self::from_array(a);
    }

    #[inline(always)]
    fn dispatch<R>(f: impl FnOnce() -> R) -> R {
        debug_assert!(
            is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq"),
            "W512Avx512 constructed without AVX-512"
        );
        // SAFETY: module contract — this word type exists only on hosts
        // where `avx512f` + `avx512vpopcntdq` were detected at backend
        // selection.
        unsafe { avx512_dispatch(f) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::{W256, W512};

    /// Deterministic pattern stream (splitmix64) — no dev-dep needed.
    fn patterns(seed: u64, n: usize) -> Vec<u64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn avx2_word_matches_portable_w256_bit_for_bit() {
        if !is_x86_feature_detected!("avx2") {
            eprintln!("skipping: host lacks avx2");
            return;
        }
        let ps = patterns(7, 64);
        for c in ps.chunks(8) {
            let (pa, pb) = (W256([c[0], c[1], c[2], c[3]]), W256([c[4], c[5], c[6], c[7]]));
            let va = W256Avx2::from_array(pa.0);
            let vb = W256Avx2::from_array(pb.0);
            assert_eq!(va.and(vb).to_array(), pa.and(pb).0);
            assert_eq!(va.or(vb).to_array(), pa.or(pb).0);
            assert_eq!(va.xor(vb).to_array(), pa.xor(pb).0);
            assert_eq!(va.not().to_array(), pa.not().0);
            assert_eq!(W256Avx2::mux(va, vb, va.not()).to_array(), W256::mux(pa, pb, pa.not()).0, "mux");
            for lanes in [1, 63, 64, 65, 200, 255, 256] {
                assert_eq!(W256Avx2::mask(lanes).to_array(), W256::mask(lanes).0, "mask({lanes})");
                let (mut got, mut want) = (0u64, 0u64);
                va.popcount_accum(W256Avx2::mask(lanes), &mut got);
                pa.popcount_accum(W256::mask(lanes), &mut want);
                assert_eq!(got, want, "popcount({lanes})");
            }
        }
        let inside = W256Avx2::dispatch(|| 41) + 1;
        assert_eq!(inside, 42);
    }

    #[test]
    fn avx512_word_matches_portable_w512_bit_for_bit() {
        if !(is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq")) {
            eprintln!("skipping: host lacks avx512f+avx512vpopcntdq");
            return;
        }
        let ps = patterns(11, 128);
        for c in ps.chunks(16) {
            let pa = W512(std::array::from_fn(|i| c[i]));
            let pb = W512(std::array::from_fn(|i| c[8 + i]));
            let va = W512Avx512::from_array(pa.0);
            let vb = W512Avx512::from_array(pb.0);
            assert_eq!(va.and(vb).to_array(), pa.and(pb).0);
            assert_eq!(va.or(vb).to_array(), pa.or(pb).0);
            assert_eq!(va.xor(vb).to_array(), pa.xor(pb).0);
            assert_eq!(va.not().to_array(), pa.not().0);
            assert_eq!(W512Avx512::mux(va, vb, vb.not()).to_array(), W512::mux(pa, pb, pb.not()).0, "mux");
            for lanes in [1, 64, 255, 256, 257, 448, 449, 511, 512] {
                assert_eq!(W512Avx512::mask(lanes).to_array(), W512::mask(lanes).0, "mask({lanes})");
                let (mut got, mut want) = (0u64, 0u64);
                va.popcount_accum(W512Avx512::mask(lanes), &mut got);
                pa.popcount_accum(W512::mask(lanes), &mut want);
                assert_eq!(got, want, "popcount({lanes})");
            }
        }
        let mut w = W512Avx512::splat(false);
        for lane in [0usize, 255, 256, 448, 511] {
            w = w.with_lane(lane, true);
            assert!(w.lane(lane), "lane {lane}");
        }
        assert_eq!(W512Avx512::dispatch(|| 7), 7);
    }
}
