//! ISA-native lane word for aarch64: [`W256Neon`] — 256 lanes in two
//! NEON `uint64x2_t` registers.
//!
//! Same layout-and-leaf-function discipline as the `x86_64` module:
//! chunk layout is identical to the portable [`super::W256`], every
//! intrinsic is confined to a `#[target_feature(enable = "neon")]`
//! leaf function, and [`LaneWord::dispatch`] wraps a whole settle pass
//! so dispatch happens once per batch. NEON is architecturally baseline
//! on aarch64, but the word still goes through runtime detection in
//! `crate::simd` so the selection and telemetry story is uniform
//! across ISAs. Correctness on non-ARM development hosts is carried by
//! the portable words: this module is compile-gated and exercised by
//! the same differential suites when built on an ARM machine.

use core::arch::aarch64::*;
use std::arch::is_aarch64_feature_detected;

use super::{mask_chunks, LaneWord};

/// 256 simulation lanes as two NEON `uint64x2_t` registers.
///
/// Bit-identical to [`super::W256`] by construction. Only constructed
/// after `neon` has been detected (see `crate::simd`).
#[derive(Clone, Copy)]
#[repr(transparent)]
pub struct W256Neon([uint64x2_t; 2]);

impl W256Neon {
    #[inline]
    fn to_array(self) -> [u64; 4] {
        // SAFETY: [uint64x2_t; 2] and [u64; 4] are both 32 plain data
        // bytes.
        unsafe { core::mem::transmute(self.0) }
    }

    #[inline]
    fn from_array(a: [u64; 4]) -> Self {
        // SAFETY: as above; a plain 32-byte reinterpretation.
        W256Neon(unsafe { core::mem::transmute(a) })
    }
}

impl std::fmt::Debug for W256Neon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("W256Neon").field(&self.to_array()).finish()
    }
}

impl PartialEq for W256Neon {
    fn eq(&self, other: &Self) -> bool {
        self.to_array() == other.to_array()
    }
}

impl Eq for W256Neon {}

#[target_feature(enable = "neon")]
#[inline]
unsafe fn neon_dispatch<R>(f: impl FnOnce() -> R) -> R {
    f()
}

#[target_feature(enable = "neon")]
#[inline]
unsafe fn neon_and(a: [uint64x2_t; 2], b: [uint64x2_t; 2]) -> [uint64x2_t; 2] {
    [vandq_u64(a[0], b[0]), vandq_u64(a[1], b[1])]
}

#[target_feature(enable = "neon")]
#[inline]
unsafe fn neon_or(a: [uint64x2_t; 2], b: [uint64x2_t; 2]) -> [uint64x2_t; 2] {
    [vorrq_u64(a[0], b[0]), vorrq_u64(a[1], b[1])]
}

#[target_feature(enable = "neon")]
#[inline]
unsafe fn neon_xor(a: [uint64x2_t; 2], b: [uint64x2_t; 2]) -> [uint64x2_t; 2] {
    [veorq_u64(a[0], b[0]), veorq_u64(a[1], b[1])]
}

#[target_feature(enable = "neon")]
#[inline]
unsafe fn neon_not(a: [uint64x2_t; 2]) -> [uint64x2_t; 2] {
    let ones = vdupq_n_u64(!0);
    [veorq_u64(a[0], ones), veorq_u64(a[1], ones)]
}

/// `(s & d1) | (!s & d0)` as one bit-select per chunk (`vbsl`).
#[target_feature(enable = "neon")]
#[inline]
unsafe fn neon_mux(d0: [uint64x2_t; 2], d1: [uint64x2_t; 2], s: [uint64x2_t; 2]) -> [uint64x2_t; 2] {
    [vbslq_u64(s[0], d1[0], d0[0]), vbslq_u64(s[1], d1[1], d0[1])]
}

impl LaneWord for W256Neon {
    const LANES: usize = 256;
    const WORDS: usize = 4;

    #[inline]
    fn splat(value: bool) -> Self {
        Self::from_array([u64::splat(value); 4])
    }

    #[inline]
    fn mask(lanes: usize) -> Self {
        Self::from_array(mask_chunks(lanes))
    }

    #[inline]
    fn and(self, other: Self) -> Self {
        // SAFETY: module contract — only constructed with neon present.
        W256Neon(unsafe { neon_and(self.0, other.0) })
    }

    #[inline]
    fn or(self, other: Self) -> Self {
        // SAFETY: module contract.
        W256Neon(unsafe { neon_or(self.0, other.0) })
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        // SAFETY: module contract.
        W256Neon(unsafe { neon_xor(self.0, other.0) })
    }

    #[inline]
    fn not(self) -> Self {
        // SAFETY: module contract.
        W256Neon(unsafe { neon_not(self.0) })
    }

    #[inline]
    fn mux(d0: Self, d1: Self, s: Self) -> Self {
        // SAFETY: module contract.
        W256Neon(unsafe { neon_mux(d0.0, d1.0, s.0) })
    }

    #[inline]
    fn popcount_accum(self, mask: Self, acc: &mut u64) {
        // Scalar popcnt over the chunks — same code the portable word
        // compiles to; NEON's byte-wise vcnt + horizontal add is not a
        // win for four 64-bit chunks.
        let (a, m) = (self.to_array(), mask.to_array());
        let mut n = 0u32;
        for i in 0..4 {
            n += (a[i] & m[i]).count_ones();
        }
        *acc += n as u64;
    }

    #[inline]
    fn get_u64(self, idx: usize) -> u64 {
        self.to_array()[idx]
    }

    #[inline]
    fn set_u64(&mut self, idx: usize, word: u64) {
        let mut a = self.to_array();
        a[idx] = word;
        *self = Self::from_array(a);
    }

    #[inline(always)]
    fn dispatch<R>(f: impl FnOnce() -> R) -> R {
        debug_assert!(is_aarch64_feature_detected!("neon"), "W256Neon constructed without NEON");
        // SAFETY: module contract — this word type exists only on hosts
        // where `neon` was detected at backend selection.
        unsafe { neon_dispatch(f) }
    }
}
