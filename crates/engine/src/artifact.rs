//! `.scim` codec for the compiled simulation [`Program`]
//! ([`SectionId::Program`](syndcim_ir::artifact::SectionId)).
//!
//! The op stream is the bulk of the section, so op *types* are packed
//! two-per-byte as 4-bit nibbles while the operand slots follow as one
//! contiguous `u32` stream in op order — each kind has a fixed operand
//! arity, so the nibble alone determines how many operands to pull.
//! Decoding re-validates every invariant the executor's unchecked slot
//! indexing relies on: every operand below `slot_count`, every commit
//! slot in range, every `seq_of_inst` entry either the
//! combinational sentinel or a real commit index, so a hostile artifact
//! can never make [`BatchExec`](crate::BatchExec) read out of bounds.

use syndcim_ir::artifact::{ArtifactError, SectionReader, SectionWriter};
use syndcim_ir::Symbols;
use syndcim_pdk::SeqUpdate;

use crate::program::{Commit, Op, Program};

/// Op-kind nibbles (two per byte, low nibble first). `Const` splits by
/// its immediate so the operand stream stays pure slot indices.
const OP_CONST0: u8 = 0;
const OP_CONST1: u8 = 1;
const OP_COPY: u8 = 2;
const OP_NOT: u8 = 3;
const OP_AND: u8 = 4;
const OP_OR: u8 = 5;
const OP_XOR: u8 = 6;
const OP_MUX: u8 = 7;

/// Sequential-update tags.
const SEQ_EDGE: u8 = 0;
const SEQ_EDGE_ENABLE: u8 = 1;
const SEQ_BITCELL_WRITE: u8 = 2;

/// Sentinel mirrored from `seq_of_inst`: "combinational instance".
const NO_SEQ: u32 = u32::MAX;

/// Decode limit on `slot_count - net_count`: the compiler appends a
/// handful of scratch slots (currently 8), so anything beyond this is a
/// corrupt count that would only inflate executor allocations.
const MAX_SCRATCH: u64 = 4096;

fn op_nibble(op: &Op) -> u8 {
    match op {
        Op::Const { ones: false, .. } => OP_CONST0,
        Op::Const { ones: true, .. } => OP_CONST1,
        Op::Copy { .. } => OP_COPY,
        Op::Not { .. } => OP_NOT,
        Op::And { .. } => OP_AND,
        Op::Or { .. } => OP_OR,
        Op::Xor { .. } => OP_XOR,
        Op::Mux { .. } => OP_MUX,
    }
}

fn op_operands(op: &Op, out: &mut Vec<u32>) {
    match *op {
        Op::Const { dst, .. } => out.push(dst),
        Op::Copy { dst, a } | Op::Not { dst, a } => out.extend([dst, a]),
        Op::And { dst, a, b } | Op::Or { dst, a, b } | Op::Xor { dst, a, b } => out.extend([dst, a, b]),
        Op::Mux { dst, d0, d1, s } => out.extend([dst, d0, d1, s]),
    }
}

/// Encode `prog` into a [`SectionId::Program`](syndcim_ir::artifact::SectionId) payload. The shared
/// [`Symbols`] are *not* written here — they live in their own section
/// and are re-attached on decode, so the name layer is stored exactly
/// once per artifact no matter how many programs reference it.
pub fn encode_program(prog: &Program) -> SectionWriter {
    let mut w = SectionWriter::new();
    w.put_u64(prog.net_count as u64);
    w.put_u64(prog.slot_count as u64);

    w.put_u32(prog.ops.len() as u32);
    let mut nibbles = vec![0u8; prog.ops.len().div_ceil(2)];
    let mut operands = Vec::new();
    for (i, op) in prog.ops.iter().enumerate() {
        nibbles[i / 2] |= op_nibble(op) << ((i % 2) * 4);
        op_operands(op, &mut operands);
    }
    for b in nibbles {
        w.put_u8(b);
    }
    w.put_u32s(&operands);

    w.put_u32(prog.commits.len() as u32);
    for c in &prog.commits {
        w.put_u8(match c.update {
            SeqUpdate::Edge => SEQ_EDGE,
            SeqUpdate::EdgeEnable => SEQ_EDGE_ENABLE,
            SeqUpdate::BitcellWrite => SEQ_BITCELL_WRITE,
        });
        w.put_u32(c.in0);
        w.put_u32(c.in1);
        w.put_u32(c.q);
    }
    w.put_u32s(&prog.seq_of_inst);
    w
}

/// Decode a [`SectionId::Program`](syndcim_ir::artifact::SectionId) payload against the already-decoded
/// shared `symbols`, re-validating every slot and index bound.
pub fn decode_program(r: &mut SectionReader<'_>, symbols: &Symbols) -> Result<Program, ArtifactError> {
    let net_count = r.get_u64("program net count")? as usize;
    if net_count != symbols.net_count() {
        return Err(
            r.malformed(format!("net count {net_count} disagrees with symbols ({})", symbols.net_count()))
        );
    }
    let slot_count = r.get_u64("program slot count")?;
    if slot_count < net_count as u64 || slot_count - net_count as u64 > MAX_SCRATCH {
        return Err(r.malformed(format!("slot count {slot_count} inconsistent with {net_count} nets")));
    }
    let slot_count = slot_count as usize;
    let check_slot = |r: &SectionReader<'_>, s: u32, what: &'static str| {
        if (s as usize) < slot_count {
            Ok(s)
        } else {
            Err(r.malformed(format!("{what}: slot {s} out of range (program has {slot_count} slots)")))
        }
    };

    let op_count = r.get_count(1, "op nibbles")?;
    let mut nibbles = Vec::with_capacity(op_count.div_ceil(2));
    for _ in 0..op_count.div_ceil(2) {
        nibbles.push(r.get_u8("op nibble")?);
    }
    let operands = r.get_u32s("op operands")?;
    let mut ops = Vec::with_capacity(op_count);
    let mut cursor = 0usize;
    fn pull<'o>(
        r: &SectionReader<'_>,
        operands: &'o [u32],
        cursor: &mut usize,
        n: usize,
    ) -> Result<&'o [u32], ArtifactError> {
        if *cursor + n > operands.len() {
            return Err(r.malformed("operand stream shorter than the op stream requires"));
        }
        let s = &operands[*cursor..*cursor + n];
        *cursor += n;
        Ok(s)
    }
    for i in 0..op_count {
        let nib = (nibbles[i / 2] >> ((i % 2) * 4)) & 0xF;
        let op = match nib {
            OP_CONST0 | OP_CONST1 => {
                let v = pull(r, &operands, &mut cursor, 1)?;
                Op::Const { dst: check_slot(r, v[0], "const dst")?, ones: nib == OP_CONST1 }
            }
            OP_COPY | OP_NOT => {
                let v = pull(r, &operands, &mut cursor, 2)?;
                let dst = check_slot(r, v[0], "unary dst")?;
                let a = check_slot(r, v[1], "unary src")?;
                if nib == OP_COPY {
                    Op::Copy { dst, a }
                } else {
                    Op::Not { dst, a }
                }
            }
            OP_AND | OP_OR | OP_XOR => {
                let v = pull(r, &operands, &mut cursor, 3)?;
                let dst = check_slot(r, v[0], "binary dst")?;
                let a = check_slot(r, v[1], "binary src a")?;
                let b = check_slot(r, v[2], "binary src b")?;
                match nib {
                    OP_AND => Op::And { dst, a, b },
                    OP_OR => Op::Or { dst, a, b },
                    _ => Op::Xor { dst, a, b },
                }
            }
            OP_MUX => {
                let v = pull(r, &operands, &mut cursor, 4)?;
                Op::Mux {
                    dst: check_slot(r, v[0], "mux dst")?,
                    d0: check_slot(r, v[1], "mux d0")?,
                    d1: check_slot(r, v[2], "mux d1")?,
                    s: check_slot(r, v[3], "mux select")?,
                }
            }
            _ => return Err(r.malformed(format!("unknown op nibble {nib}"))),
        };
        ops.push(op);
    }
    // A stray high nibble on an odd-count tail, or operands beyond the
    // op stream, are corruption too.
    if op_count % 2 == 1 && nibbles[op_count / 2] >> 4 != 0 {
        return Err(r.malformed("nonzero padding nibble after the op stream"));
    }
    if cursor != operands.len() {
        return Err(r.malformed(format!("{} operand(s) beyond the op stream", operands.len() - cursor)));
    }

    let commit_count = r.get_count(13, "commit table")?;
    let mut commits = Vec::with_capacity(commit_count);
    for _ in 0..commit_count {
        let update = match r.get_u8("commit update tag")? {
            SEQ_EDGE => SeqUpdate::Edge,
            SEQ_EDGE_ENABLE => SeqUpdate::EdgeEnable,
            SEQ_BITCELL_WRITE => SeqUpdate::BitcellWrite,
            t => return Err(r.malformed(format!("unknown sequential update tag {t}"))),
        };
        let in0 = r.get_u32("commit in0")?;
        let in1 = r.get_u32("commit in1")?;
        let q = r.get_u32("commit q")?;
        let in0 = check_slot(r, in0, "commit in0")?;
        let in1 = check_slot(r, in1, "commit in1")?;
        let q = check_slot(r, q, "commit q")?;
        commits.push(Commit { update, in0, in1, q });
    }

    let seq_of_inst = r.get_u32s("sequential index map")?;
    if seq_of_inst.len() != symbols.inst_count() {
        return Err(r.malformed(format!(
            "sequential index map covers {} instances, symbols have {}",
            seq_of_inst.len(),
            symbols.inst_count()
        )));
    }
    for &s in &seq_of_inst {
        if s != NO_SEQ && s as usize >= commit_count {
            return Err(r.malformed(format!("sequential index {s} beyond {commit_count} commits")));
        }
    }

    Ok(Program { net_count, slot_count, ops, commits, seq_of_inst, syms: symbols.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_ir::artifact::{ArtifactReader, ArtifactWriter, SectionId};
    use syndcim_ir::Lowering;
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::{CellKind, CellLibrary};

    fn sample() -> (Program, Symbols) {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("mix", &lib);
        let a = b.input("a");
        let c = b.input("b");
        let s = b.xor2(a, c);
        let q = b.dff(s);
        let qe = b.dffe(s, a);
        let rbl = b.add(CellKind::Sram6T2T, &[a, c])[0];
        let m1 = b.xor2(q, qe);
        let y = b.xor2(m1, rbl);
        b.output("y", y);
        let m = b.finish();
        let low = Lowering::validated(&m, &lib).unwrap();
        let prog = Program::from_lowering(&low, &m, &lib);
        (prog, low.symbols().clone())
    }

    fn frame(payload: SectionWriter) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = ArtifactWriter::new(&mut out, 1).unwrap();
        w.write_section(SectionId::Program, payload).unwrap();
        w.finish().unwrap();
        out
    }

    #[test]
    fn program_codec_roundtrips_ops_commits_and_seq_map() {
        let (prog, syms) = sample();
        let bytes = frame(encode_program(&prog));
        let reader = ArtifactReader::parse(&bytes).unwrap();
        let mut r = reader.reader(SectionId::Program).unwrap();
        let back = decode_program(&mut r, &syms).unwrap();
        r.finish().unwrap();
        assert_eq!(back.net_count, prog.net_count);
        assert_eq!(back.slot_count, prog.slot_count);
        assert_eq!(back.ops, prog.ops);
        assert_eq!(back.seq_of_inst, prog.seq_of_inst);
        assert_eq!(back.commits.len(), prog.commits.len());
        for (a, b) in back.commits.iter().zip(&prog.commits) {
            assert_eq!((a.update, a.in0, a.in1, a.q), (b.update, b.in0, b.in1, b.q));
        }
    }

    #[test]
    fn hostile_slots_and_tags_are_rejected() {
        let (prog, syms) = sample();

        // An operand slot beyond slot_count.
        let mut mutated = prog.clone();
        if let Some(Op::Xor { a, .. }) = mutated.ops.last_mut() {
            *a = u32::MAX;
        } else {
            panic!("sample ends in an xor");
        }
        let bytes = frame(encode_program(&mutated));
        let reader = ArtifactReader::parse(&bytes).unwrap();
        let mut r = reader.reader(SectionId::Program).unwrap();
        assert!(matches!(decode_program(&mut r, &syms), Err(ArtifactError::Malformed { .. })));

        // A dangling sequential index.
        let mut mutated = prog.clone();
        let seq_slot =
            mutated.seq_of_inst.iter().position(|&s| s != NO_SEQ).expect("sample has sequential cells");
        mutated.seq_of_inst[seq_slot] = 1000;
        let bytes = frame(encode_program(&mutated));
        let reader = ArtifactReader::parse(&bytes).unwrap();
        let mut r = reader.reader(SectionId::Program).unwrap();
        assert!(matches!(decode_program(&mut r, &syms), Err(ArtifactError::Malformed { .. })));
    }
}
