//! Bit-parallel execution of a compiled [`Program`].
//!
//! [`BatchSim`] evaluates up to 64 independent test vectors ("lanes")
//! simultaneously: every slot holds one `u64` whose bit `l` is the logic
//! value in lane `l`. A settle is one linear pass over the op stream —
//! no hash maps, no per-cell dispatch through `Vec<bool>` buffers — and
//! per-net toggles accumulate as `popcount((prev ^ next) & lane_mask)`,
//! which makes an L-lane run report exactly the toggle totals of L
//! separate interpreter runs over the same per-lane stimulus.

use syndcim_netlist::{InstId, Module, NetId};
use syndcim_pdk::SeqUpdate;
use syndcim_sim::SimBackend;

use crate::program::{Op, Program};

/// Word-level batch executor over one compiled program.
#[derive(Debug)]
pub struct BatchSim<'a> {
    prog: &'a Program,
    module: &'a Module,
    /// Value word per slot (net slots first, then scratch).
    slots: Vec<u64>,
    /// Stored state word per sequential element (dense commit order).
    state: Vec<u64>,
    /// Capture buffer reused every step.
    next: Vec<u64>,
    /// Per-net toggle counts summed over active lanes.
    toggles: Vec<u64>,
    lanes: usize,
    mask: u64,
    lane_cycles: u64,
}

fn lane_mask(lanes: usize) -> u64 {
    assert!((1..=64).contains(&lanes), "lane count {lanes} outside 1..=64");
    if lanes == 64 {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

impl<'a> BatchSim<'a> {
    /// Create an executor with `lanes` active lanes (1..=64). All nets
    /// and states start at logic 0 in every lane, matching a freshly
    /// constructed interpreter.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is outside `1..=64`, or if `module`'s net or
    /// instance counts disagree with the program (a shape check — the
    /// caller is responsible for pairing a program with the exact
    /// module it was compiled from).
    pub fn new(prog: &'a Program, module: &'a Module, lanes: usize) -> Self {
        assert_eq!(prog.net_count, module.net_count(), "program/module net-count mismatch");
        assert_eq!(prog.seq_of_inst.len(), module.instance_count(), "program/module instance-count mismatch");
        BatchSim {
            prog,
            module,
            slots: vec![0; prog.slot_count],
            state: vec![0; prog.commits.len()],
            next: vec![0; prog.commits.len()],
            toggles: vec![0; prog.net_count],
            lanes,
            mask: lane_mask(lanes),
            lane_cycles: 0,
        }
    }

    /// The compiled program backing this executor.
    pub fn program(&self) -> &Program {
        self.prog
    }

    /// Shrink the active lane set (values in deactivated lanes keep
    /// evaluating but stop contributing toggles). Growing is not
    /// supported: a deactivated lane's uncounted transitions would
    /// corrupt the "toggles == sum of L independent runs" invariant if
    /// it were re-activated — create a new executor instead.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or larger than the current lane count.
    pub fn set_lanes(&mut self, lanes: usize) {
        assert!(
            lanes <= self.lanes,
            "lane set can only shrink (have {}, asked {lanes}); create a new BatchSim to grow",
            self.lanes
        );
        self.lanes = lanes;
        self.mask = lane_mask(lanes);
    }

    #[inline]
    fn write(&mut self, dst: u32, val: u64) {
        let d = dst as usize;
        if d < self.prog.net_count {
            let old = self.slots[d];
            self.toggles[d] += ((old ^ val) & self.mask).count_ones() as u64;
        }
        self.slots[d] = val;
    }

    /// Drive one lane of a net, leaving the others unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not an active lane.
    pub fn poke_lane(&mut self, net: NetId, lane: usize, value: bool) {
        assert!(lane < self.lanes, "lane {lane} out of range (executor has {} lanes)", self.lanes);
        let bit = 1u64 << lane;
        let old = self.slots[net.index()];
        let word = if value { old | bit } else { old & !bit };
        SimBackend::poke_word(self, net, word);
    }
}

impl SimBackend for BatchSim<'_> {
    fn lanes(&self) -> usize {
        self.lanes
    }

    fn module(&self) -> &Module {
        self.module
    }

    fn poke_word(&mut self, net: NetId, word: u64) {
        self.write(net.index() as u32, word);
    }

    fn peek_word(&self, net: NetId) -> u64 {
        self.slots[net.index()]
    }

    fn settle(&mut self) {
        // One linear pass over the levelized op stream.
        for k in 0..self.prog.ops.len() {
            let op = self.prog.ops[k];
            let val = match op {
                Op::Const { ones, .. } => {
                    if ones {
                        !0
                    } else {
                        0
                    }
                }
                Op::Copy { a, .. } => self.slots[a as usize],
                Op::Not { a, .. } => !self.slots[a as usize],
                Op::And { a, b, .. } => self.slots[a as usize] & self.slots[b as usize],
                Op::Or { a, b, .. } => self.slots[a as usize] | self.slots[b as usize],
                Op::Xor { a, b, .. } => self.slots[a as usize] ^ self.slots[b as usize],
                Op::Mux { d0, d1, s, .. } => {
                    let sel = self.slots[s as usize];
                    (sel & self.slots[d1 as usize]) | (!sel & self.slots[d0 as usize])
                }
            };
            let dst = match op {
                Op::Const { dst, .. }
                | Op::Copy { dst, .. }
                | Op::Not { dst, .. }
                | Op::And { dst, .. }
                | Op::Or { dst, .. }
                | Op::Xor { dst, .. }
                | Op::Mux { dst, .. } => dst,
            };
            self.write(dst, val);
        }
    }

    fn step(&mut self) {
        self.settle();
        // Capture: every next state from pre-edge values.
        for (i, c) in self.prog.commits.iter().enumerate() {
            let cur = self.state[i];
            self.next[i] = match c.update {
                SeqUpdate::Edge => self.slots[c.in0 as usize],
                SeqUpdate::EdgeEnable => {
                    let en = self.slots[c.in1 as usize];
                    (en & self.slots[c.in0 as usize]) | (!en & cur)
                }
                SeqUpdate::BitcellWrite => {
                    let wwl = self.slots[c.in0 as usize];
                    (wwl & self.slots[c.in1 as usize]) | (!wwl & cur)
                }
            };
        }
        // Commit: update states and q nets.
        for i in 0..self.prog.commits.len() {
            let nv = self.next[i];
            let q = self.prog.commits[i].q;
            self.state[i] = nv;
            self.write(q, nv);
        }
        self.lane_cycles += self.lanes as u64;
        self.settle();
    }

    fn force_state_word(&mut self, inst: InstId, word: u64) {
        let seq = self.prog.seq_of_inst[inst.index()];
        assert_ne!(seq, u32::MAX, "instance {inst:?} is not sequential");
        let q = self.prog.commits[seq as usize].q;
        self.state[seq as usize] = word;
        self.write(q, word);
    }

    fn state_word(&self, inst: InstId) -> u64 {
        let seq = self.prog.seq_of_inst[inst.index()];
        assert_ne!(seq, u32::MAX, "instance {inst:?} is not sequential");
        self.state[seq as usize]
    }

    fn lane_cycles(&self) -> u64 {
        self.lane_cycles
    }

    fn reset_activity(&mut self) {
        self.toggles.iter_mut().for_each(|t| *t = 0);
        self.lane_cycles = 0;
    }

    fn toggle_table(&self) -> &[u64] {
        &self.toggles
    }
}
