//! Bit-parallel execution of a compiled [`Program`].
//!
//! [`BatchExec`] is generic over its [`LaneWord`]: every slot holds one
//! word whose lane `l` is the logic value of one independent test
//! vector. [`BatchSim`] (`u64`, 64 lanes) is the classic single-register
//! hot path; [`BatchSim256`] (`[u64; 4]`, 256 lanes) quadruples the
//! vectors per pass on straight-line element-wise code that LLVM lowers
//! to the target's vector unit. [`EngineSim`] picks the narrowest word
//! that fits a requested lane count, so callers never pay the wide word
//! for small batches.
//!
//! A settle is one linear pass over the op stream — no hash maps, no
//! per-cell dispatch through `Vec<bool>` buffers — and per-net toggles
//! accumulate as `popcount((prev ^ next) & lane_mask)`, which makes an
//! L-lane run report exactly the toggle totals of L separate interpreter
//! runs over the same per-lane stimulus, at any word width.

use syndcim_netlist::{InstId, Module, NetId};
use syndcim_pdk::SeqUpdate;
use syndcim_sim::SimBackend;
use syndcim_telemetry as telemetry;

use crate::program::{Op, Program};
use crate::word::{LaneWord, W256};

/// Word-level batch executor over one compiled program, generic over
/// the lane word `W`. Use the [`BatchSim`] / [`BatchSim256`] aliases or
/// the width-selecting [`EngineSim`].
#[derive(Debug)]
pub struct BatchExec<'a, W: LaneWord> {
    prog: &'a Program,
    module: &'a Module,
    /// Value word per slot (net slots first, then scratch).
    slots: Vec<W>,
    /// Stored state word per sequential element (dense commit order).
    state: Vec<W>,
    /// Capture buffer reused every step.
    next: Vec<W>,
    /// Per-net toggle counts summed over active lanes.
    toggles: Vec<u64>,
    /// Optional per-lane toggle counts, `net * lanes + lane` — enabled
    /// by [`BatchExec::enable_lane_toggles`] for measurements that need
    /// per-lane energy attribution (e.g. write-energy variance).
    lane_toggles: Option<Vec<u64>>,
    lanes: usize,
    mask: W,
    lane_cycles: u64,
    /// Cached telemetry handles, resolved once per executor so the
    /// settle hot path pays one relaxed atomic load per *pass* (never
    /// per op) when telemetry is off. Toggle and lane-cycle totals are
    /// flushed in bulk on [`BatchExec::reset_activity`]/drop instead of
    /// being counted per write — the per-op `write` path carries no
    /// instrumentation at all.
    ctr_settles: telemetry::Counter,
    ctr_ops: telemetry::Counter,
}

/// The 64-lane executor (one `u64` per slot).
pub type BatchSim<'a> = BatchExec<'a, u64>;

/// The 256-lane wide-word executor (`[u64; 4]` per slot).
pub type BatchSim256<'a> = BatchExec<'a, W256>;

impl<'a, W: LaneWord> BatchExec<'a, W> {
    /// Create an executor with `lanes` active lanes (`1..=W::LANES`).
    /// All nets and states start at logic 0 in every lane, matching a
    /// freshly constructed interpreter.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is outside `1..=W::LANES`, or if `module`'s net
    /// or instance counts disagree with the program (a shape check — the
    /// caller is responsible for pairing a program with the exact module
    /// it was compiled from).
    pub fn new(prog: &'a Program, module: &'a Module, lanes: usize) -> Self {
        assert_eq!(prog.net_count, module.net_count(), "program/module net-count mismatch");
        assert_eq!(prog.seq_of_inst.len(), module.instance_count(), "program/module instance-count mismatch");
        telemetry::counter("engine.executors").incr();
        BatchExec {
            prog,
            module,
            slots: vec![W::splat(false); prog.slot_count],
            state: vec![W::splat(false); prog.commits.len()],
            next: vec![W::splat(false); prog.commits.len()],
            toggles: vec![0; prog.net_count],
            lane_toggles: None,
            lanes,
            mask: W::mask(lanes),
            lane_cycles: 0,
            ctr_settles: telemetry::counter("engine.settles"),
            ctr_ops: telemetry::counter("engine.ops_executed"),
        }
    }

    /// Add the activity accumulated since the last reset (toggle total
    /// across all nets, lane-cycles) to the flow-wide telemetry
    /// counters. Called from [`BatchExec::reset_activity`] and on drop,
    /// so totals are exact without any per-write instrumentation.
    fn flush_activity_telemetry(&self) {
        if telemetry::enabled() {
            telemetry::counter("engine.toggles").add(self.toggles.iter().sum());
            telemetry::counter("engine.lane_cycles").add(self.lane_cycles);
        }
    }

    /// The compiled program backing this executor.
    pub fn program(&self) -> &Program {
        self.prog
    }

    /// Shrink the active lane set (values in deactivated lanes keep
    /// evaluating but stop contributing toggles). Growing is not
    /// supported: a deactivated lane's uncounted transitions would
    /// corrupt the "toggles == sum of L independent runs" invariant if
    /// it were re-activated — create a new executor instead.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or larger than the current lane count,
    /// or if per-lane toggle accounting is enabled (its storage is
    /// strided by the lane count at enable time, so resizing afterwards
    /// would corrupt the attribution — create a new executor instead).
    pub fn set_lanes(&mut self, lanes: usize) {
        assert!(
            lanes <= self.lanes,
            "lane set can only shrink (have {}, asked {lanes}); create a new BatchSim to grow",
            self.lanes
        );
        assert!(
            self.lane_toggles.is_none(),
            "cannot resize the lane set once per-lane toggle accounting is enabled"
        );
        self.lanes = lanes;
        self.mask = W::mask(lanes);
    }

    /// Start per-lane toggle accounting (in addition to the aggregate
    /// table). Costs one extra pass over changed lanes per slot write,
    /// so it is off by default; enable it before driving stimulus.
    pub fn enable_lane_toggles(&mut self) {
        if self.lane_toggles.is_none() {
            self.lane_toggles = Some(vec![0; self.prog.net_count * self.lanes]);
        }
    }

    /// Per-net toggle counts of one lane (indexed by [`NetId::index`]).
    ///
    /// # Panics
    ///
    /// Panics if [`BatchExec::enable_lane_toggles`] was never called or
    /// `lane` is not an active lane.
    pub fn lane_toggle_table(&self, lane: usize) -> Vec<u64> {
        assert!(lane < self.lanes, "lane {lane} out of range (executor has {} lanes)", self.lanes);
        let lt = self.lane_toggles.as_ref().expect("per-lane toggles not enabled");
        (0..self.prog.net_count).map(|n| lt[n * self.lanes + lane]).collect()
    }

    #[inline]
    fn write(&mut self, dst: u32, val: W) {
        let d = dst as usize;
        if d < self.prog.net_count {
            let old = self.slots[d];
            let flips = old.xor(val).and(self.mask);
            flips.popcount_accum(W::splat(true), &mut self.toggles[d]);
            if let Some(lt) = &mut self.lane_toggles {
                for wi in 0..W::WORDS {
                    let mut chunk = flips.get_u64(wi);
                    while chunk != 0 {
                        let lane = wi * 64 + chunk.trailing_zeros() as usize;
                        lt[d * self.lanes + lane] += 1;
                        chunk &= chunk - 1;
                    }
                }
            }
        }
        self.slots[d] = val;
    }

    /// Drive one lane of a net, leaving the others unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not an active lane.
    pub fn poke_lane(&mut self, net: NetId, lane: usize, value: bool) {
        assert!(lane < self.lanes, "lane {lane} out of range (executor has {} lanes)", self.lanes);
        let word = self.slots[net.index()].with_lane(lane, value);
        self.write(net.index() as u32, word);
    }
}

impl<W: LaneWord> SimBackend for BatchExec<'_, W> {
    fn lanes(&self) -> usize {
        self.lanes
    }

    fn module(&self) -> &Module {
        self.module
    }

    fn poke_word(&mut self, net: NetId, word: u64) {
        self.poke_word_at(net, 0, word);
    }

    fn peek_word(&self, net: NetId) -> u64 {
        self.slots[net.index()].get_u64(0)
    }

    fn poke_word_at(&mut self, net: NetId, word_idx: usize, word: u64) {
        assert!(word_idx < self.words(), "word {word_idx} out of range ({} lane words)", self.words());
        let mut val = self.slots[net.index()];
        val.set_u64(word_idx, word);
        self.write(net.index() as u32, val);
    }

    fn peek_word_at(&self, net: NetId, word_idx: usize) -> u64 {
        assert!(word_idx < self.words(), "word {word_idx} out of range ({} lane words)", self.words());
        self.slots[net.index()].get_u64(word_idx)
    }

    fn settle(&mut self) {
        self.ctr_settles.incr();
        self.ctr_ops.add(self.prog.ops.len() as u64);
        // One linear pass over the levelized op stream.
        for k in 0..self.prog.ops.len() {
            let op = self.prog.ops[k];
            let val = match op {
                Op::Const { ones, .. } => W::splat(ones),
                Op::Copy { a, .. } => self.slots[a as usize],
                Op::Not { a, .. } => self.slots[a as usize].not(),
                Op::And { a, b, .. } => self.slots[a as usize].and(self.slots[b as usize]),
                Op::Or { a, b, .. } => self.slots[a as usize].or(self.slots[b as usize]),
                Op::Xor { a, b, .. } => self.slots[a as usize].xor(self.slots[b as usize]),
                Op::Mux { d0, d1, s, .. } => {
                    W::mux(self.slots[d0 as usize], self.slots[d1 as usize], self.slots[s as usize])
                }
            };
            let dst = match op {
                Op::Const { dst, .. }
                | Op::Copy { dst, .. }
                | Op::Not { dst, .. }
                | Op::And { dst, .. }
                | Op::Or { dst, .. }
                | Op::Xor { dst, .. }
                | Op::Mux { dst, .. } => dst,
            };
            self.write(dst, val);
        }
    }

    fn step(&mut self) {
        self.settle();
        // Capture: every next state from pre-edge values.
        for (i, c) in self.prog.commits.iter().enumerate() {
            let cur = self.state[i];
            self.next[i] = match c.update {
                SeqUpdate::Edge => self.slots[c.in0 as usize],
                SeqUpdate::EdgeEnable => W::mux(cur, self.slots[c.in0 as usize], self.slots[c.in1 as usize]),
                SeqUpdate::BitcellWrite => {
                    W::mux(cur, self.slots[c.in1 as usize], self.slots[c.in0 as usize])
                }
            };
        }
        // Commit: update states and q nets.
        for i in 0..self.prog.commits.len() {
            let nv = self.next[i];
            let q = self.prog.commits[i].q;
            self.state[i] = nv;
            self.write(q, nv);
        }
        self.lane_cycles += self.lanes as u64;
        self.settle();
    }

    fn force_state_word(&mut self, inst: InstId, word: u64) {
        self.force_state_word_at(inst, 0, word);
    }

    fn state_word(&self, inst: InstId) -> u64 {
        self.state_word_at(inst, 0)
    }

    fn force_state_word_at(&mut self, inst: InstId, word_idx: usize, word: u64) {
        assert!(word_idx < self.words(), "word {word_idx} out of range ({} lane words)", self.words());
        let seq = self.prog.seq_of_inst[inst.index()];
        assert_ne!(seq, u32::MAX, "instance {inst:?} is not sequential");
        let q = self.prog.commits[seq as usize].q;
        let mut val = self.state[seq as usize];
        val.set_u64(word_idx, word);
        self.state[seq as usize] = val;
        self.write(q, val);
    }

    fn state_word_at(&self, inst: InstId, word_idx: usize) -> u64 {
        assert!(word_idx < self.words(), "word {word_idx} out of range ({} lane words)", self.words());
        let seq = self.prog.seq_of_inst[inst.index()];
        assert_ne!(seq, u32::MAX, "instance {inst:?} is not sequential");
        self.state[seq as usize].get_u64(word_idx)
    }

    fn lane_cycles(&self) -> u64 {
        self.lane_cycles
    }

    fn reset_activity(&mut self) {
        self.flush_activity_telemetry();
        self.toggles.iter_mut().for_each(|t| *t = 0);
        if let Some(lt) = &mut self.lane_toggles {
            lt.iter_mut().for_each(|t| *t = 0);
        }
        self.lane_cycles = 0;
    }

    fn toggle_table(&self) -> &[u64] {
        &self.toggles
    }

    fn net_of(&self, port: &str) -> NetId {
        // Binary search on the lowering's shared sorted port table —
        // replaces the default linear scan over `module.ports` and
        // needs no per-executor name map.
        self.prog.syms.port_net(port).map(NetId).unwrap_or_else(|| panic!("no port named `{port}`"))
    }
}

impl<W: LaneWord> Drop for BatchExec<'_, W> {
    fn drop(&mut self) {
        self.flush_activity_telemetry();
    }
}

/// Width-selecting engine executor: [`BatchSim`] (`u64`) for up to 64
/// lanes, [`BatchSim256`] (`[u64; 4]`) beyond — one type for callers
/// that size their batches at run time.
///
/// ```
/// use syndcim_engine::{EngineSim, Program};
/// use syndcim_netlist::NetlistBuilder;
/// use syndcim_pdk::CellLibrary;
/// use syndcim_sim::SimBackend;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = CellLibrary::syn40();
/// let mut b = NetlistBuilder::new("inv", &lib);
/// let a = b.input("a");
/// let y = b.not(a);
/// b.output("y", y);
/// let m = b.finish();
/// let prog = Program::compile(&m, &lib)?;
///
/// // 100 lanes does not fit a u64, so the wide word is selected.
/// let mut sim = EngineSim::new(&prog, &m, 100);
/// assert!(matches!(sim, EngineSim::Wide(_)));
/// let a_net = m.port("a").unwrap().net;
/// sim.poke_word_at(a_net, 0, !0); // drive lanes 0..64 high
/// sim.settle();
/// assert!(!sim.get_lane("y", 3)); // inverted
/// assert!(sim.get_lane("y", 99)); // lane 99 still low
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub enum EngineSim<'a> {
    /// `u64` lane word, 1..=64 lanes.
    Narrow(BatchSim<'a>),
    /// `[u64; 4]` lane word, 65..=256 lanes.
    Wide(BatchSim256<'a>),
}

impl<'a> EngineSim<'a> {
    /// Most lanes one executor carries (the wide word's capacity).
    pub const MAX_LANES: usize = W256::LANES;

    /// Create an executor for `lanes` lanes on the narrowest lane word
    /// that fits.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or exceeds [`EngineSim::MAX_LANES`],
    /// or on a program/module shape mismatch.
    pub fn new(prog: &'a Program, module: &'a Module, lanes: usize) -> Self {
        if lanes <= u64::LANES {
            EngineSim::Narrow(BatchExec::new(prog, module, lanes))
        } else {
            EngineSim::Wide(BatchExec::new(prog, module, lanes))
        }
    }

    /// Force the wide (`[u64; 4]`) word even for small lane counts —
    /// the knob the differential tests and benches use to compare
    /// widths on identical stimulus.
    pub fn new_wide(prog: &'a Program, module: &'a Module, lanes: usize) -> Self {
        EngineSim::Wide(BatchExec::new(prog, module, lanes))
    }

    /// Start per-lane toggle accounting (see
    /// [`BatchExec::enable_lane_toggles`]).
    pub fn enable_lane_toggles(&mut self) {
        match self {
            EngineSim::Narrow(s) => s.enable_lane_toggles(),
            EngineSim::Wide(s) => s.enable_lane_toggles(),
        }
    }

    /// Per-net toggle counts of one lane (see
    /// [`BatchExec::lane_toggle_table`]).
    pub fn lane_toggle_table(&self, lane: usize) -> Vec<u64> {
        match self {
            EngineSim::Narrow(s) => s.lane_toggle_table(lane),
            EngineSim::Wide(s) => s.lane_toggle_table(lane),
        }
    }
}

macro_rules! delegate {
    ($self:ident, $sim:ident => $body:expr) => {
        match $self {
            EngineSim::Narrow($sim) => $body,
            EngineSim::Wide($sim) => $body,
        }
    };
}

impl SimBackend for EngineSim<'_> {
    fn lanes(&self) -> usize {
        delegate!(self, s => s.lanes())
    }

    fn module(&self) -> &Module {
        delegate!(self, s => SimBackend::module(s))
    }

    fn poke_word(&mut self, net: NetId, word: u64) {
        delegate!(self, s => s.poke_word(net, word))
    }

    fn peek_word(&self, net: NetId) -> u64 {
        delegate!(self, s => s.peek_word(net))
    }

    fn poke_word_at(&mut self, net: NetId, word_idx: usize, word: u64) {
        delegate!(self, s => s.poke_word_at(net, word_idx, word))
    }

    fn peek_word_at(&self, net: NetId, word_idx: usize) -> u64 {
        delegate!(self, s => s.peek_word_at(net, word_idx))
    }

    fn settle(&mut self) {
        delegate!(self, s => s.settle())
    }

    fn step(&mut self) {
        delegate!(self, s => s.step())
    }

    fn force_state_word(&mut self, inst: InstId, word: u64) {
        delegate!(self, s => s.force_state_word(inst, word))
    }

    fn state_word(&self, inst: InstId) -> u64 {
        delegate!(self, s => s.state_word(inst))
    }

    fn force_state_word_at(&mut self, inst: InstId, word_idx: usize, word: u64) {
        delegate!(self, s => s.force_state_word_at(inst, word_idx, word))
    }

    fn state_word_at(&self, inst: InstId, word_idx: usize) -> u64 {
        delegate!(self, s => s.state_word_at(inst, word_idx))
    }

    fn lane_cycles(&self) -> u64 {
        delegate!(self, s => s.lane_cycles())
    }

    fn reset_activity(&mut self) {
        delegate!(self, s => s.reset_activity())
    }

    fn toggle_table(&self) -> &[u64] {
        delegate!(self, s => s.toggle_table())
    }

    fn net_of(&self, port: &str) -> NetId {
        delegate!(self, s => s.net_of(port))
    }
}
