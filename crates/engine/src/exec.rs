//! Bit-parallel execution of a compiled [`Program`].
//!
//! [`BatchExec`] is generic over its [`LaneWord`]: every slot holds one
//! word whose lane `l` is the logic value of one independent test
//! vector. [`BatchSim`] (`u64`, 64 lanes) is the classic single-register
//! hot path; [`BatchSim256`] (`[u64; 4]`, 256 lanes) and
//! [`BatchSim512`] (`[u64; 8]`, 512 lanes) multiply the vectors per
//! pass on straight-line element-wise code that LLVM lowers to the
//! target's vector unit; the ISA-native words in the arch-gated
//! `crate::word::x86_64` / `crate::word::aarch64` modules run the same
//! generic passes on explicit AVX2/AVX-512/NEON intrinsics.
//! [`EngineSim`] picks the word at run time — narrowest width that
//! fits the lane count, widest detected ISA for that width (overridable
//! with `SYNDCIM_SIMD`, see [`crate::SimdPolicy`]) — so callers never
//! pay the wide word for small batches and never select a data path the
//! CPU lacks.
//!
//! A settle is one linear pass over the op stream — no hash maps, no
//! per-cell dispatch through `Vec<bool>` buffers — and per-net toggles
//! accumulate as `popcount((prev ^ next) & lane_mask)`, which makes an
//! L-lane run report exactly the toggle totals of L separate interpreter
//! runs over the same per-lane stimulus, at any word width. Each pass
//! runs inside one [`LaneWord::dispatch`] call, so an ISA word pays one
//! runtime dispatch per settle (never per op) and its intrinsic leaf
//! functions inline into the pass.

use syndcim_netlist::{InstId, Module, NetId};
use syndcim_pdk::SeqUpdate;
use syndcim_sim::SimBackend;
use syndcim_telemetry as telemetry;

use crate::fault::{EngineError, FaultKind, FaultPlan};
use crate::program::{Op, Program};
use crate::simd::{SimdBackend, SimdPolicy};
#[cfg(target_arch = "aarch64")]
use crate::word::aarch64::W256Neon;
#[cfg(target_arch = "x86_64")]
use crate::word::x86_64::{W256Avx2, W512Avx512};
use crate::word::{LaneWord, W256, W512};

/// Compiled form of an installed [`FaultPlan`]: dense per-net-slot
/// lane-mask tables consulted by every store in [`BatchExec::write`].
/// Only allocated when a non-empty plan is installed — the nominal path
/// carries a single predictable `Option` branch.
#[derive(Debug)]
struct FaultState<W> {
    /// Per-slot AND mask: stuck-at-0 lanes cleared, all others set.
    and: Vec<W>,
    /// Per-slot OR mask: stuck-at-1 lanes set.
    or: Vec<W>,
    /// Per-slot XOR mask: lanes of transient flips active *this* cycle.
    xor: Vec<W>,
    /// Pending transient flips `(cycle, net slot, lane)`, sorted by
    /// cycle; `next_flip` is the cursor of the first not-yet-activated
    /// entry.
    flips: Vec<(u64, u32, u32)>,
    next_flip: usize,
    /// Slots whose XOR mask is currently nonzero (this cycle's flips).
    active_xor: Vec<u32>,
    /// `step()` calls since the plan was installed.
    cycle: u64,
}

/// Word-level batch executor over one compiled program, generic over
/// the lane word `W`. Use the [`BatchSim`] / [`BatchSim256`] aliases or
/// the width-selecting [`EngineSim`].
#[derive(Debug)]
pub struct BatchExec<'a, W: LaneWord> {
    prog: &'a Program,
    module: &'a Module,
    /// Value word per slot (net slots first, then scratch).
    slots: Vec<W>,
    /// Stored state word per sequential element (dense commit order).
    state: Vec<W>,
    /// Capture buffer reused every step.
    next: Vec<W>,
    /// Per-net toggle counts summed over active lanes.
    toggles: Vec<u64>,
    /// Optional per-lane toggle counts, `net * lanes + lane` — enabled
    /// by [`BatchExec::enable_lane_toggles`] for measurements that need
    /// per-lane energy attribution (e.g. write-energy variance).
    lane_toggles: Option<Vec<u64>>,
    /// Compiled fault-injection masks (`None` unless a non-empty
    /// [`FaultPlan`] is installed — the nominal write path pays one
    /// predictable branch, nothing else).
    faults: Option<Box<FaultState<W>>>,
    lanes: usize,
    mask: W,
    lane_cycles: u64,
    /// Cached telemetry handles, resolved once per executor so the
    /// settle hot path pays one relaxed atomic load per *pass* (never
    /// per op) when telemetry is off. Toggle and lane-cycle totals are
    /// flushed in bulk on [`BatchExec::reset_activity`]/drop instead of
    /// being counted per write — the per-op `write` path carries no
    /// instrumentation at all.
    ctr_settles: telemetry::Counter,
    ctr_ops: telemetry::Counter,
}

/// The 64-lane executor (one `u64` per slot).
pub type BatchSim<'a> = BatchExec<'a, u64>;

/// The 256-lane wide-word executor (`[u64; 4]` per slot).
pub type BatchSim256<'a> = BatchExec<'a, W256>;

/// The 512-lane wide-word executor (`[u64; 8]` per slot).
pub type BatchSim512<'a> = BatchExec<'a, W512>;

impl<'a, W: LaneWord> BatchExec<'a, W> {
    /// Create an executor with `lanes` active lanes (`1..=W::LANES`).
    /// All nets and states start at logic 0 in every lane, matching a
    /// freshly constructed interpreter.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is outside `1..=W::LANES`, or if `module`'s net
    /// or instance counts disagree with the program (a shape check — the
    /// caller is responsible for pairing a program with the exact module
    /// it was compiled from).
    pub fn new(prog: &'a Program, module: &'a Module, lanes: usize) -> Self {
        assert_eq!(prog.net_count, module.net_count(), "program/module net-count mismatch");
        assert_eq!(prog.seq_of_inst.len(), module.instance_count(), "program/module instance-count mismatch");
        telemetry::counter("engine.executors").incr();
        BatchExec {
            prog,
            module,
            slots: vec![W::splat(false); prog.slot_count],
            state: vec![W::splat(false); prog.commits.len()],
            next: vec![W::splat(false); prog.commits.len()],
            toggles: vec![0; prog.net_count],
            lane_toggles: None,
            faults: None,
            lanes,
            mask: W::mask(lanes),
            lane_cycles: 0,
            ctr_settles: telemetry::counter("engine.settles"),
            ctr_ops: telemetry::counter("engine.ops_executed"),
        }
    }

    /// Add the activity accumulated since the last reset (toggle total
    /// across all nets, lane-cycles) to the flow-wide telemetry
    /// counters. Called from [`BatchExec::reset_activity`] and on drop,
    /// so totals are exact without any per-write instrumentation.
    fn flush_activity_telemetry(&self) {
        if telemetry::enabled() {
            telemetry::counter("engine.toggles").add(self.toggles.iter().sum());
            telemetry::counter("engine.lane_cycles").add(self.lane_cycles);
        }
    }

    /// The compiled program backing this executor.
    pub fn program(&self) -> &Program {
        self.prog
    }

    /// Shrink the active lane set (values in deactivated lanes keep
    /// evaluating but stop contributing toggles). Growing is rejected:
    /// a deactivated lane's uncounted transitions would corrupt the
    /// "toggles == sum of L independent runs" invariant if it were
    /// re-activated — create a new executor instead. Also rejected once
    /// per-lane toggle accounting is enabled (its storage is strided by
    /// the lane count at enable time, so resizing afterwards would
    /// corrupt the attribution) and while a fault plan is installed
    /// (its masks were validated against the lane set).
    pub fn set_lanes(&mut self, lanes: usize) -> Result<(), EngineError> {
        if lanes == 0 {
            return Err(EngineError::ZeroLanes);
        }
        if lanes > self.lanes {
            return Err(EngineError::LaneGrow { have: self.lanes, asked: lanes });
        }
        if self.lane_toggles.is_some() {
            return Err(EngineError::LaneTogglesPinned);
        }
        if self.faults.is_some() {
            return Err(EngineError::FaultPlanPinned);
        }
        self.lanes = lanes;
        self.mask = W::mask(lanes);
        Ok(())
    }

    /// Start per-lane toggle accounting (in addition to the aggregate
    /// table). Costs one extra pass over changed lanes per slot write,
    /// so it is off by default; enable it before driving stimulus.
    pub fn enable_lane_toggles(&mut self) {
        if self.lane_toggles.is_none() {
            self.lane_toggles = Some(vec![0; self.prog.net_count * self.lanes]);
        }
    }

    /// Per-net toggle counts of one lane (indexed by [`NetId::index`]),
    /// or `None` when [`BatchExec::enable_lane_toggles`] was never
    /// called or `lane` is not an active lane.
    pub fn lane_toggle_table(&self, lane: usize) -> Option<Vec<u64>> {
        if lane >= self.lanes {
            return None;
        }
        let lt = self.lane_toggles.as_ref()?;
        Some((0..self.prog.net_count).map(|n| lt[n * self.lanes + lane]).collect())
    }

    /// The single slot-write choke point: fault masks, aggregate and
    /// per-lane toggle accounting all hang here, width-generically.
    /// `inline(always)` is load-bearing: every settle/commit op funnels
    /// through this function, and it must land inside the
    /// `#[target_feature]` dispatch frame — outlined, it compiles
    /// without the ISA features and every op pays a vector-ABI call.
    #[inline(always)]
    fn write(&mut self, dst: u32, mut val: W) {
        let d = dst as usize;
        if d < self.prog.net_count {
            if let Some(f) = &self.faults {
                val = val.and(f.and[d]).or(f.or[d]).xor(f.xor[d]);
            }
            let old = self.slots[d];
            let flips = old.xor(val).and(self.mask);
            flips.popcount_accum(W::splat(true), &mut self.toggles[d]);
            if let Some(lt) = &mut self.lane_toggles {
                for wi in 0..W::WORDS {
                    let mut chunk = flips.get_u64(wi);
                    while chunk != 0 {
                        let lane = wi * 64 + chunk.trailing_zeros() as usize;
                        lt[d * self.lanes + lane] += 1;
                        chunk &= chunk - 1;
                    }
                }
            }
        }
        self.slots[d] = val;
    }

    /// Install a [`FaultPlan`], compiling it into the per-slot mask
    /// tables the write path consults. The plan is validated against
    /// this executor's shape first; on error nothing changes. Stuck-at
    /// faults force their lanes immediately (toggle-accounted like any
    /// other transition); transient flips wait for their cycle, counted
    /// in [`SimBackend::step`] calls from this installation. Installing
    /// an empty plan is equivalent to [`BatchExec::clear_faults`].
    pub fn install_faults(&mut self, plan: &FaultPlan) -> Result<(), EngineError> {
        plan.validate(self.prog.net_count, self.lanes)?;
        self.faults = None;
        if plan.is_empty() {
            return Ok(());
        }
        let n = self.prog.net_count;
        let mut st = Box::new(FaultState {
            and: vec![W::splat(true); n],
            or: vec![W::splat(false); n],
            xor: vec![W::splat(false); n],
            flips: Vec::new(),
            next_flip: 0,
            active_xor: Vec::new(),
            cycle: 0,
        });
        let mut stuck_slots: Vec<u32> = Vec::new();
        for f in plan.faults() {
            let d = f.net.index();
            match f.kind {
                FaultKind::StuckAt0 => {
                    st.and[d] = st.and[d].with_lane(f.lane, false);
                    stuck_slots.push(d as u32);
                }
                FaultKind::StuckAt1 => {
                    st.or[d] = st.or[d].with_lane(f.lane, true);
                    stuck_slots.push(d as u32);
                }
                FaultKind::FlipAtCycle(c) => st.flips.push((c, d as u32, f.lane as u32)),
            }
        }
        st.flips.sort_unstable();
        stuck_slots.sort_unstable();
        stuck_slots.dedup();
        self.faults = Some(st);
        // Force the stuck values onto the current slot contents so the
        // fault is live before the next settle (write re-applies the
        // masks and accounts the forced transitions as toggles).
        for d in stuck_slots {
            self.write(d, self.slots[d as usize]);
        }
        Ok(())
    }

    /// Remove the installed fault plan (if any). Slot values are left
    /// as they are — the next settle recomputes every internal net
    /// fault-free; input nets keep their last (possibly forced) value
    /// until re-driven.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Whether a non-empty fault plan is currently installed.
    pub fn faults_installed(&self) -> bool {
        self.faults.is_some()
    }

    /// Per-lane compare of `net` against a designated golden lane:
    /// `ceil(lanes / 64)` 64-bit chunks, bit `l % 64` of chunk `l / 64`
    /// set iff lane `l` disagrees with `golden_lane`. The chunk count
    /// follows the *active lane count*, not the backing word width, so
    /// the result is identical across SIMD backends (a pinned AVX-512
    /// word running 256 lanes reports 4 chunks, like the portable
    /// word). Inactive lanes (and the golden lane itself) read as
    /// matching. Errors if `golden_lane` is not an active lane.
    pub fn mismatch_mask(&self, net: NetId, golden_lane: usize) -> Result<Vec<u64>, EngineError> {
        if golden_lane >= self.lanes {
            return Err(EngineError::LaneOutOfRange { lane: golden_lane, lanes: self.lanes });
        }
        if net.index() >= self.prog.net_count {
            return Err(EngineError::NetOutOfRange { net: net.index(), net_count: self.prog.net_count });
        }
        let w = self.slots[net.index()];
        let golden = w.lane(golden_lane);
        Ok((0..self.lanes.div_ceil(64))
            .map(|wi| {
                let chunk = w.get_u64(wi);
                (if golden { !chunk } else { chunk }) & self.mask.get_u64(wi)
            })
            .collect())
    }

    /// Advance the transient-flip schedule by one cycle: lift the
    /// previous cycle's XOR masks, arm this cycle's, and re-store every
    /// affected slot through the masked write path (so flips on nets
    /// nothing recomputes — primary inputs, idle state — still take
    /// effect, and every inversion is toggle-accounted). Called at the
    /// top of [`SimBackend::step`]; no-op without an installed plan.
    fn advance_fault_cycle(&mut self) {
        if self.faults.is_none() {
            return;
        }
        // Lift the previous cycle's flips: the XOR masks are still
        // armed, so re-storing a slot inverts it back to clean.
        let mut i = 0;
        while let Some(&d) = self.faults.as_ref().and_then(|f| f.active_xor.get(i)) {
            self.write(d, self.slots[d as usize]);
            i += 1;
        }
        let f = self.faults.as_mut().expect("checked above");
        for &d in &f.active_xor {
            f.xor[d as usize] = W::splat(false);
        }
        f.active_xor.clear();
        // Arm this cycle's flips.
        let cycle = f.cycle;
        while let Some(&(c, d, lane)) = f.flips.get(f.next_flip) {
            if c > cycle {
                break;
            }
            f.next_flip += 1;
            if c == cycle {
                f.xor[d as usize] = f.xor[d as usize].with_lane(lane as usize, true);
                f.active_xor.push(d);
            }
        }
        f.active_xor.sort_unstable();
        f.active_xor.dedup();
        f.cycle += 1;
        let mut i = 0;
        while let Some(&d) = self.faults.as_ref().and_then(|f| f.active_xor.get(i)) {
            self.write(d, self.slots[d as usize]);
            i += 1;
        }
    }

    /// Drive one lane of a net, leaving the others unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not an active lane.
    pub fn poke_lane(&mut self, net: NetId, lane: usize, value: bool) {
        assert!(lane < self.lanes, "lane {lane} out of range (executor has {} lanes)", self.lanes);
        let word = self.slots[net.index()].with_lane(lane, value);
        self.write(net.index() as u32, word);
    }

    /// One linear pass over the levelized op stream. Runs inside
    /// [`LaneWord::dispatch`] (see [`SimBackend::settle`]) so an ISA
    /// word's intrinsic leaf functions inline here; keep it
    /// `inline(always)` so the closure body actually lands in the
    /// `#[target_feature]` trampoline.
    #[inline(always)]
    fn settle_pass(&mut self) {
        for k in 0..self.prog.ops.len() {
            let op = self.prog.ops[k];
            let val = match op {
                Op::Const { ones, .. } => W::splat(ones),
                Op::Copy { a, .. } => self.slots[a as usize],
                Op::Not { a, .. } => self.slots[a as usize].not(),
                Op::And { a, b, .. } => self.slots[a as usize].and(self.slots[b as usize]),
                Op::Or { a, b, .. } => self.slots[a as usize].or(self.slots[b as usize]),
                Op::Xor { a, b, .. } => self.slots[a as usize].xor(self.slots[b as usize]),
                Op::Mux { d0, d1, s, .. } => {
                    W::mux(self.slots[d0 as usize], self.slots[d1 as usize], self.slots[s as usize])
                }
            };
            let dst = match op {
                Op::Const { dst, .. }
                | Op::Copy { dst, .. }
                | Op::Not { dst, .. }
                | Op::And { dst, .. }
                | Op::Or { dst, .. }
                | Op::Xor { dst, .. }
                | Op::Mux { dst, .. } => dst,
            };
            self.write(dst, val);
        }
    }

    /// Capture every next state from pre-edge values, then commit
    /// states and q nets — the sequential half of [`SimBackend::step`].
    /// Runs inside [`LaneWord::dispatch`] like [`BatchExec::settle_pass`].
    #[inline(always)]
    fn capture_commit_pass(&mut self) {
        for (i, c) in self.prog.commits.iter().enumerate() {
            let cur = self.state[i];
            self.next[i] = match c.update {
                SeqUpdate::Edge => self.slots[c.in0 as usize],
                SeqUpdate::EdgeEnable => W::mux(cur, self.slots[c.in0 as usize], self.slots[c.in1 as usize]),
                SeqUpdate::BitcellWrite => {
                    W::mux(cur, self.slots[c.in1 as usize], self.slots[c.in0 as usize])
                }
            };
        }
        for i in 0..self.prog.commits.len() {
            let nv = self.next[i];
            let q = self.prog.commits[i].q;
            self.state[i] = nv;
            self.write(q, nv);
        }
    }
}

impl<W: LaneWord> SimBackend for BatchExec<'_, W> {
    fn lanes(&self) -> usize {
        self.lanes
    }

    fn module(&self) -> &Module {
        self.module
    }

    fn poke_word(&mut self, net: NetId, word: u64) {
        self.poke_word_at(net, 0, word);
    }

    fn peek_word(&self, net: NetId) -> u64 {
        self.slots[net.index()].get_u64(0)
    }

    fn poke_word_at(&mut self, net: NetId, word_idx: usize, word: u64) {
        assert!(word_idx < self.words(), "word {word_idx} out of range ({} lane words)", self.words());
        let mut val = self.slots[net.index()];
        val.set_u64(word_idx, word);
        self.write(net.index() as u32, val);
    }

    fn peek_word_at(&self, net: NetId, word_idx: usize) -> u64 {
        assert!(word_idx < self.words(), "word {word_idx} out of range ({} lane words)", self.words());
        self.slots[net.index()].get_u64(word_idx)
    }

    fn settle(&mut self) {
        self.ctr_settles.incr();
        self.ctr_ops.add(self.prog.ops.len() as u64);
        // One runtime dispatch for the whole pass: the closure compiles
        // inside the word's `#[target_feature]` trampoline (identity
        // for portable words).
        W::dispatch(|| self.settle_pass());
    }

    fn step(&mut self) {
        self.advance_fault_cycle();
        self.settle();
        W::dispatch(|| self.capture_commit_pass());
        self.lane_cycles += self.lanes as u64;
        self.settle();
    }

    fn force_state_word(&mut self, inst: InstId, word: u64) {
        self.force_state_word_at(inst, 0, word);
    }

    fn state_word(&self, inst: InstId) -> u64 {
        self.state_word_at(inst, 0)
    }

    fn force_state_word_at(&mut self, inst: InstId, word_idx: usize, word: u64) {
        assert!(word_idx < self.words(), "word {word_idx} out of range ({} lane words)", self.words());
        let seq = self.prog.seq_of_inst[inst.index()];
        assert_ne!(seq, u32::MAX, "instance {inst:?} is not sequential");
        let q = self.prog.commits[seq as usize].q;
        let mut val = self.state[seq as usize];
        val.set_u64(word_idx, word);
        self.state[seq as usize] = val;
        self.write(q, val);
    }

    fn state_word_at(&self, inst: InstId, word_idx: usize) -> u64 {
        assert!(word_idx < self.words(), "word {word_idx} out of range ({} lane words)", self.words());
        let seq = self.prog.seq_of_inst[inst.index()];
        assert_ne!(seq, u32::MAX, "instance {inst:?} is not sequential");
        self.state[seq as usize].get_u64(word_idx)
    }

    fn lane_cycles(&self) -> u64 {
        self.lane_cycles
    }

    fn reset_activity(&mut self) {
        self.flush_activity_telemetry();
        self.toggles.iter_mut().for_each(|t| *t = 0);
        if let Some(lt) = &mut self.lane_toggles {
            lt.iter_mut().for_each(|t| *t = 0);
        }
        self.lane_cycles = 0;
    }

    fn toggle_table(&self) -> &[u64] {
        &self.toggles
    }

    fn net_of(&self, port: &str) -> NetId {
        // Binary search on the lowering's shared sorted port table —
        // replaces the default linear scan over `module.ports` and
        // needs no per-executor name map.
        self.prog.syms.port_net(port).map(NetId).unwrap_or_else(|| panic!("no port named `{port}`"))
    }
}

impl<W: LaneWord> Drop for BatchExec<'_, W> {
    fn drop(&mut self) {
        self.flush_activity_telemetry();
    }
}

/// Width- and ISA-selecting engine executor: [`BatchSim`] (`u64`) for
/// up to 64 lanes, then the narrowest wide word that fits — on the
/// widest vector ISA the CPU supports ([`SimdPolicy::select`]). One
/// type for callers that size their batches at run time.
///
/// Set `SYNDCIM_SIMD=portable|avx2|avx512|neon|auto` to pin the data
/// path; invalid or unsupported values are typed errors from
/// [`EngineSim::try_new`] (and panics from [`EngineSim::new`]), never a
/// silent fallback. Every construction records the selected backend on
/// the `engine.simd_backend` telemetry gauge.
///
/// ```
/// use syndcim_engine::{EngineSim, Program};
/// use syndcim_netlist::NetlistBuilder;
/// use syndcim_pdk::CellLibrary;
/// use syndcim_sim::SimBackend;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = CellLibrary::syn40();
/// let mut b = NetlistBuilder::new("inv", &lib);
/// let a = b.input("a");
/// let y = b.not(a);
/// b.output("y", y);
/// let m = b.finish();
/// let prog = Program::compile(&m, &lib)?;
///
/// // 100 lanes does not fit a u64, so a 256-lane word is selected —
/// // AVX2/NEON if the CPU has it, portable [u64; 4] otherwise.
/// let mut sim = EngineSim::new(&prog, &m, 100);
/// assert_eq!(sim.lanes(), 100);
/// assert_eq!(sim.word_lanes(), 256);
/// let a_net = m.port("a").unwrap().net;
/// sim.poke_word_at(a_net, 0, !0); // drive lanes 0..64 high
/// sim.settle();
/// assert!(!sim.get_lane("y", 3)); // inverted
/// assert!(sim.get_lane("y", 99)); // lane 99 still low
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub enum EngineSim<'a> {
    /// `u64` lane word, 1..=64 lanes.
    Narrow(BatchSim<'a>),
    /// Portable `[u64; 4]` lane word, 65..=256 lanes.
    Wide(BatchSim256<'a>),
    /// Portable `[u64; 8]` lane word, 257..=512 lanes.
    Wide512(BatchSim512<'a>),
    /// AVX2 `__m256i` lane word, 65..=256 lanes.
    #[cfg(target_arch = "x86_64")]
    Avx2(BatchExec<'a, W256Avx2>),
    /// AVX-512 `__m512i` lane word, 65..=512 lanes.
    #[cfg(target_arch = "x86_64")]
    Avx512(BatchExec<'a, W512Avx512>),
    /// NEON `uint64x2_t` lane word, 65..=256 lanes.
    #[cfg(target_arch = "aarch64")]
    Neon(BatchExec<'a, W256Neon>),
}

macro_rules! delegate {
    ($self:ident, $sim:ident => $body:expr) => {
        match $self {
            EngineSim::Narrow($sim) => $body,
            EngineSim::Wide($sim) => $body,
            EngineSim::Wide512($sim) => $body,
            #[cfg(target_arch = "x86_64")]
            EngineSim::Avx2($sim) => $body,
            #[cfg(target_arch = "x86_64")]
            EngineSim::Avx512($sim) => $body,
            #[cfg(target_arch = "aarch64")]
            EngineSim::Neon($sim) => $body,
        }
    };
}

impl<'a> EngineSim<'a> {
    /// Most lanes one executor carries (the 512-lane word's capacity).
    pub const MAX_LANES: usize = W512::LANES;

    /// Create an executor for `lanes` lanes on the narrowest lane word
    /// that fits, using the widest vector ISA the `SYNDCIM_SIMD` policy
    /// allows and the CPU supports.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or exceeds what the policy carries
    /// ([`EngineSim::MAX_LANES`] under `auto`), if `SYNDCIM_SIMD` is
    /// invalid or unsupported on this CPU, or on a program/module shape
    /// mismatch. Flows that want these as values call
    /// [`EngineSim::try_new`] (and validate the policy once up front
    /// with [`SimdPolicy::from_env`]).
    pub fn new(prog: &'a Program, module: &'a Module, lanes: usize) -> Self {
        Self::try_new(prog, module, lanes).unwrap_or_else(|e| panic!("engine SIMD selection failed: {e}"))
    }

    /// [`EngineSim::new`] with the selection errors surfaced: consults
    /// `SYNDCIM_SIMD` ([`SimdPolicy::from_env`]), resolves the backend
    /// for `lanes` ([`SimdPolicy::select`]) and constructs on it.
    ///
    /// # Errors
    ///
    /// [`EngineError::SimdUnknown`] / [`EngineError::SimdUnsupported`]
    /// for a bad `SYNDCIM_SIMD` value, [`EngineError::SimdLaneCap`]
    /// when `lanes` exceeds the policy's widest word, and
    /// [`EngineError::ZeroLanes`] for an empty lane set.
    pub fn try_new(prog: &'a Program, module: &'a Module, lanes: usize) -> Result<Self, EngineError> {
        Self::with_policy(prog, module, lanes, SimdPolicy::from_env()?)
    }

    /// [`EngineSim::try_new`] with an explicit [`SimdPolicy`] instead
    /// of the environment.
    ///
    /// # Errors
    ///
    /// As [`EngineSim::try_new`], minus the environment parse.
    pub fn with_policy(
        prog: &'a Program,
        module: &'a Module,
        lanes: usize,
        policy: SimdPolicy,
    ) -> Result<Self, EngineError> {
        if lanes == 0 {
            return Err(EngineError::ZeroLanes);
        }
        Self::with_backend(prog, module, lanes, policy.select(lanes)?)
    }

    /// Construct on an explicit [`SimdBackend`] — the knob the
    /// differential tests and benches use to compare data paths on
    /// identical stimulus. The portable backend still picks the
    /// narrowest `u64`/[`W256`]/[`W512`] word that fits `lanes`.
    ///
    /// # Errors
    ///
    /// [`EngineError::SimdUnsupported`] if this CPU cannot run
    /// `backend`, [`EngineError::SimdLaneCap`] if `lanes` exceeds the
    /// backend's word, [`EngineError::ZeroLanes`] for an empty lane
    /// set.
    pub fn with_backend(
        prog: &'a Program,
        module: &'a Module,
        lanes: usize,
        backend: SimdBackend,
    ) -> Result<Self, EngineError> {
        if lanes == 0 {
            return Err(EngineError::ZeroLanes);
        }
        if !backend.detected() {
            return Err(EngineError::SimdUnsupported { backend });
        }
        if lanes > backend.max_lanes() {
            return Err(EngineError::SimdLaneCap { backend, lanes, max: backend.max_lanes() });
        }
        let sim = match backend {
            SimdBackend::Portable => {
                if lanes <= u64::LANES {
                    EngineSim::Narrow(BatchExec::new(prog, module, lanes))
                } else if lanes <= W256::LANES {
                    EngineSim::Wide(BatchExec::new(prog, module, lanes))
                } else {
                    EngineSim::Wide512(BatchExec::new(prog, module, lanes))
                }
            }
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx2 => EngineSim::Avx2(BatchExec::new(prog, module, lanes)),
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx512 => EngineSim::Avx512(BatchExec::new(prog, module, lanes)),
            #[cfg(target_arch = "aarch64")]
            SimdBackend::Neon => EngineSim::Neon(BatchExec::new(prog, module, lanes)),
            #[allow(unreachable_patterns)]
            _ => unreachable!("backend {backend} passed detection on an architecture without it"),
        };
        telemetry::gauge("engine.simd_backend").set(backend.code());
        Ok(sim)
    }

    /// Force the portable wide (`[u64; 4]`) word even for small lane
    /// counts — the historical knob width-comparison tests use; ISA
    /// comparisons go through [`EngineSim::with_backend`].
    pub fn new_wide(prog: &'a Program, module: &'a Module, lanes: usize) -> Self {
        EngineSim::Wide(BatchExec::new(prog, module, lanes))
    }

    /// Which SIMD data path this executor runs on.
    pub fn simd_backend(&self) -> SimdBackend {
        match self {
            EngineSim::Narrow(_) | EngineSim::Wide(_) | EngineSim::Wide512(_) => SimdBackend::Portable,
            #[cfg(target_arch = "x86_64")]
            EngineSim::Avx2(_) => SimdBackend::Avx2,
            #[cfg(target_arch = "x86_64")]
            EngineSim::Avx512(_) => SimdBackend::Avx512,
            #[cfg(target_arch = "aarch64")]
            EngineSim::Neon(_) => SimdBackend::Neon,
        }
    }

    /// Lane capacity of the selected word (≥ the active lane count).
    pub fn word_lanes(&self) -> usize {
        match self {
            EngineSim::Narrow(_) => u64::LANES,
            EngineSim::Wide(_) => W256::LANES,
            EngineSim::Wide512(_) => W512::LANES,
            #[cfg(target_arch = "x86_64")]
            EngineSim::Avx2(_) => W256Avx2::LANES,
            #[cfg(target_arch = "x86_64")]
            EngineSim::Avx512(_) => W512Avx512::LANES,
            #[cfg(target_arch = "aarch64")]
            EngineSim::Neon(_) => W256Neon::LANES,
        }
    }

    /// Shrink the active lane set (see [`BatchExec::set_lanes`]).
    pub fn set_lanes(&mut self, lanes: usize) -> Result<(), EngineError> {
        delegate!(self, s => s.set_lanes(lanes))
    }

    /// Start per-lane toggle accounting (see
    /// [`BatchExec::enable_lane_toggles`]).
    pub fn enable_lane_toggles(&mut self) {
        delegate!(self, s => s.enable_lane_toggles())
    }

    /// Per-net toggle counts of one lane (see
    /// [`BatchExec::lane_toggle_table`]).
    pub fn lane_toggle_table(&self, lane: usize) -> Option<Vec<u64>> {
        delegate!(self, s => s.lane_toggle_table(lane))
    }

    /// Install a per-lane fault plan (see [`BatchExec::install_faults`]).
    pub fn install_faults(&mut self, plan: &FaultPlan) -> Result<(), EngineError> {
        delegate!(self, s => s.install_faults(plan))
    }

    /// Remove the installed fault plan (see [`BatchExec::clear_faults`]).
    pub fn clear_faults(&mut self) {
        delegate!(self, s => s.clear_faults())
    }

    /// Whether a non-empty fault plan is installed.
    pub fn faults_installed(&self) -> bool {
        delegate!(self, s => s.faults_installed())
    }

    /// Per-lane compare against a golden lane (see
    /// [`BatchExec::mismatch_mask`]).
    pub fn mismatch_mask(&self, net: NetId, golden_lane: usize) -> Result<Vec<u64>, EngineError> {
        delegate!(self, s => s.mismatch_mask(net, golden_lane))
    }
}

impl SimBackend for EngineSim<'_> {
    fn lanes(&self) -> usize {
        delegate!(self, s => s.lanes())
    }

    fn module(&self) -> &Module {
        delegate!(self, s => SimBackend::module(s))
    }

    fn poke_word(&mut self, net: NetId, word: u64) {
        delegate!(self, s => s.poke_word(net, word))
    }

    fn peek_word(&self, net: NetId) -> u64 {
        delegate!(self, s => s.peek_word(net))
    }

    fn poke_word_at(&mut self, net: NetId, word_idx: usize, word: u64) {
        delegate!(self, s => s.poke_word_at(net, word_idx, word))
    }

    fn peek_word_at(&self, net: NetId, word_idx: usize) -> u64 {
        delegate!(self, s => s.peek_word_at(net, word_idx))
    }

    fn settle(&mut self) {
        delegate!(self, s => s.settle())
    }

    fn step(&mut self) {
        delegate!(self, s => s.step())
    }

    fn force_state_word(&mut self, inst: InstId, word: u64) {
        delegate!(self, s => s.force_state_word(inst, word))
    }

    fn state_word(&self, inst: InstId) -> u64 {
        delegate!(self, s => s.state_word(inst))
    }

    fn force_state_word_at(&mut self, inst: InstId, word_idx: usize, word: u64) {
        delegate!(self, s => s.force_state_word_at(inst, word_idx, word))
    }

    fn state_word_at(&self, inst: InstId, word_idx: usize) -> u64 {
        delegate!(self, s => s.state_word_at(inst, word_idx))
    }

    fn lane_cycles(&self) -> u64 {
        delegate!(self, s => s.lane_cycles())
    }

    fn reset_activity(&mut self) {
        delegate!(self, s => s.reset_activity())
    }

    fn toggle_table(&self) -> &[u64] {
        delegate!(self, s => s.toggle_table())
    }

    fn net_of(&self, port: &str) -> NetId {
        delegate!(self, s => s.net_of(port))
    }
}
