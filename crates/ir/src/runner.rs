//! Thread-parallel batch execution.
//!
//! The environment has no `rayon`, so this is a small scoped-thread
//! work-stealing map: jobs are claimed off a shared atomic cursor and
//! results land at their original indices. Compiled programs (the
//! engine's `Program`, the STA's `CompiledSta`) are `Sync`, so every
//! worker can evaluate against the same compiled artifact — the
//! intended pattern for sweeping thousands of vector batches or corner
//! grids across cores.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use syndcim_telemetry as telemetry;

/// Number of worker threads to use for `jobs` parallel jobs.
pub fn default_threads(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    cores.min(jobs).max(1)
}

/// Apply `f` to every job on a pool of scoped worker threads, returning
/// results in job order. `f` receives `(job_index, job)`.
///
/// # Panics
///
/// Propagates a panic from any worker (the panic payload is resumed on
/// the calling thread once all workers have stopped).
pub fn parallel_map<T, R, F>(jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let threads = default_threads(jobs.len());
    parallel_map_threads(jobs, threads, f)
}

/// [`parallel_map`] with an explicit worker-thread count (≤ 1 runs
/// inline on the calling thread). Telemetry spans opened inside `f`
/// nest under the *caller's* current span regardless of `threads`:
/// each worker adopts the caller's span before running jobs, and the
/// collector merges same-named spans, so the aggregated span tree and
/// counters are identical for any thread count — pinned by
/// `tests/telemetry.rs`.
pub fn parallel_map_threads<T, R, F>(jobs: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if threads <= 1 {
        return jobs.into_iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }

    let parent = telemetry::current_span();
    let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<R>>> = slots.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let _adopt = telemetry::adopt(parent);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let job =
                        slots[i].lock().expect("job mutex poisoned").take().expect("each job claimed once");
                    let r = f(i, job);
                    *results[i].lock().expect("result mutex poisoned") = Some(r);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().expect("result mutex poisoned").expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_with_indices() {
        let jobs: Vec<u64> = (0..100).collect();
        let out = parallel_map(jobs, |i, j| {
            assert_eq!(i as u64, j);
            j * j
        });
        assert_eq!(out, (0..100).map(|j| j * j).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u8> = parallel_map(Vec::<u8>::new(), |_, j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn single_job_runs_inline() {
        let out = parallel_map(vec![41], |_, j| j + 1);
        assert_eq!(out, vec![42]);
    }
}
