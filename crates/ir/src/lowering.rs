//! Shared netlist lowering: the traversal every compiled backend reuses.
//!
//! Lowering a module — building connectivity, levelizing the
//! combinational instances and assigning every net a dense slot — is
//! the part of compilation that is identical between the bit-parallel
//! simulation program in `syndcim-engine`, the compiled timing program
//! in `syndcim-sta` and the compiled power program in `syndcim-power`.
//! [`Lowering`] performs that traversal once and exposes the results,
//! so downstream compilers only decide what to emit *per instance*,
//! never how to walk the netlist.
//!
//! The slot assignment is deliberately trivial — slot `i` is net `i` —
//! which keeps every per-net side table (toggle counts, arrival times,
//! switched capacitance, wire parasitics) directly indexable by
//! [`NetId::index`] with no remapping step between backends.

use std::sync::atomic::{AtomicU64, Ordering};

use syndcim_netlist::{levelize, validate, Connectivity, InstId, Module, NetId, NetlistError};
use syndcim_pdk::CellLibrary;
use syndcim_telemetry as telemetry;

use crate::intern::Symbols;

/// Global count of [`Lowering`] constructions (not clones), used by
/// tests to pin the "one lowering per compiled macro" contract.
static BUILDS: AtomicU64 = AtomicU64::new(0);

/// The shared front half of netlist compilation: connectivity tables,
/// the levelized combinational instance order and the dense net→slot
/// map.
///
/// Build one with [`Lowering::new`] (tolerates unread floating nets,
/// matching `syndcim_sta::Sta`) or [`Lowering::validated`] (additionally
/// rejects read-but-undriven nets, matching the simulation backends).
#[derive(Debug, Clone)]
pub struct Lowering {
    conn: Connectivity,
    order: Vec<InstId>,
    net_count: usize,
    /// Interned net/instance/group name tables (see [`Symbols`]) —
    /// built once here and shared by every compiled artifact, so no
    /// downstream program ever clones a `String` table again.
    symbols: Symbols,
    /// Whether this lowering passed the simulation backends' floating
    /// net check ([`Lowering::validated`]).
    validated: bool,
}

impl Lowering {
    /// Lower `module`: build connectivity and levelize the combinational
    /// instances.
    ///
    /// # Errors
    ///
    /// Returns an error if a net has multiple drivers or the
    /// combinational part of the design is cyclic.
    pub fn new(module: &Module, lib: &CellLibrary) -> Result<Self, NetlistError> {
        telemetry::span!("lowering");
        telemetry::counter("ir.lowerings").incr();
        BUILDS.fetch_add(1, Ordering::Relaxed);
        let conn = {
            telemetry::span!("lowering.connectivity");
            Connectivity::build(module)?
        };
        let order = {
            telemetry::span!("lowering.levelize");
            levelize(module, lib, &conn)?
        };
        let symbols = {
            telemetry::span!("lowering.intern");
            Symbols::from_module(module)
        };
        Ok(Lowering { conn, order, net_count: module.net_count(), symbols, validated: false })
    }

    /// Like [`Lowering::new`], but additionally rejects floating nets
    /// that are read by an instance or output port — the contract the
    /// simulation backends require.
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as [`Lowering::new`],
    /// plus [`NetlistError::FloatingNet`] for read-but-undriven nets.
    pub fn validated(module: &Module, lib: &CellLibrary) -> Result<Self, NetlistError> {
        let mut low = Self::new(module, lib)?;
        {
            telemetry::span!("lowering.validate");
            validate(module, &low.conn)?;
        }
        low.validated = true;
        Ok(low)
    }

    /// `true` if this lowering was built with [`Lowering::validated`]
    /// (i.e. the floating-net check the simulation backends require has
    /// already passed). Consumers with the same contract —
    /// `syndcim_sim::Simulator::with_lowering` — use this to skip a
    /// redundant validation walk.
    pub fn is_validated(&self) -> bool {
        self.validated
    }

    /// The interned name tables built from the lowered module: net,
    /// instance and group names behind one shared
    /// [`Interner`](crate::Interner). Cloning the returned handle is a
    /// few `Arc` bumps — this is how the compiled simulation, timing
    /// and power programs all resolve names without owning any.
    pub fn symbols(&self) -> &Symbols {
        &self.symbols
    }

    /// Connectivity tables (drivers and sinks per net).
    pub fn connectivity(&self) -> &Connectivity {
        &self.conn
    }

    /// Levelized order of the combinational instances. Evaluating (or
    /// propagating arrival times through) instances in this order needs
    /// exactly one linear pass.
    pub fn order(&self) -> &[InstId] {
        &self.order
    }

    /// Number of real net slots (equals the module's net count).
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Dense slot of a net. Slots are stable across backends: slot `i`
    /// always mirrors net `i`.
    pub fn slot(&self, net: NetId) -> u32 {
        net.index() as u32
    }

    /// Reassemble a lowering from already-built tables. Crate-internal:
    /// the artifact decoder is the only caller. Deliberately does *not*
    /// bump the build counter — loading an artifact is wiring-only, and
    /// `Lowering::builds()` staying flat across a load is exactly the
    /// invariant the roundtrip tests pin.
    pub(crate) fn from_parts(
        conn: Connectivity,
        order: Vec<InstId>,
        net_count: usize,
        symbols: Symbols,
        validated: bool,
    ) -> Self {
        Lowering { conn, order, net_count, symbols, validated }
    }

    /// Number of `Lowering`s *built* so far in this process (clones do
    /// not count). A diagnostic counter: the "compiled trinity" tests
    /// use it to pin that one `implement` call walks the netlist exactly
    /// once, no matter how many backends consume the result.
    pub fn builds() -> u64 {
        BUILDS.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::NetlistBuilder;

    #[test]
    fn lowering_orders_match_levelize() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("chain", &lib);
        let a = b.input("a");
        let x = b.not(a);
        let y = b.not(x);
        b.output("y", y);
        let m = b.finish();
        let low = Lowering::new(&m, &lib).unwrap();
        let conn = Connectivity::build(&m).unwrap();
        assert_eq!(low.order(), levelize(&m, &lib, &conn).unwrap());
        assert_eq!(low.net_count(), m.net_count());
        assert_eq!(low.slot(a), a.index() as u32);
    }

    #[test]
    fn validated_rejects_floating_reads_but_new_tolerates_them() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("float", &lib);
        let dangling = b.net("dangling");
        let y = b.not(dangling);
        b.output("y", y);
        let m = b.finish();
        assert!(Lowering::new(&m, &lib).is_ok(), "the STA contract tolerates unreached nets");
        assert!(matches!(Lowering::validated(&m, &lib), Err(NetlistError::FloatingNet { .. })));
    }

    #[test]
    fn build_counter_counts_builds_not_clones() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("inv", &lib);
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let m = b.finish();
        let before = Lowering::builds();
        let low = Lowering::new(&m, &lib).unwrap();
        let _clone = low.clone();
        let _clone2 = low.clone();
        assert!(Lowering::builds() > before, "new() must bump the counter");
    }
}
