//! Symbol interning: the shared name layer of the compiled trinity.
//!
//! Compiled artifacts outlive the module they were lowered from, so
//! until this layer existed every one of them cloned owned `String`
//! name tables out of the netlist — `CompiledSta` alone carried a
//! per-net, a per-instance *and* a per-instance-group clone, which is
//! three `String`s per element of a macro that the scale tier grows to
//! 10⁵–10⁶ nets. Interning replaces those tables with 4-byte
//! [`Symbol`]s resolved lazily against one shared, immutable
//! [`Interner`]: the bytes of every distinct name are stored exactly
//! once, in one arena, behind one `Arc` that the lowering and all
//! downstream programs hand around for free.
//!
//! The split is deliberate:
//!
//! * [`InternerBuilder`] — mutable, deduplicating (hash-indexed), used
//!   only while [`Symbols::from_module`] walks the module once;
//! * [`Interner`] — frozen, resolve-only: a contiguous byte arena plus
//!   an end-offset table, so its retained memory is exactly
//!   `Σ unique name bytes + 4 bytes per symbol` with no hash-map
//!   overhead surviving the build.
//!
//! [`Symbols`] is the module-shaped view: per-net / per-instance /
//! per-group symbol tables (each an `Arc` slice, shared rather than
//! cloned between the lowering and the simulation, timing and power
//! programs) plus the group *parent* table that lets the power
//! breakdown reconstruct full hierarchical group paths without storing
//! a single path string per instance.

use std::collections::HashMap;
use std::sync::Arc;

use syndcim_netlist::Module;

/// An interned string: a 4-byte handle resolved against the
/// [`Interner`] it was created by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The symbol's dense index within its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a symbol from its dense id. Crate-internal: only the
    /// artifact decoder constructs symbols this way, and it validates
    /// every id against the decoded interner before handing them out.
    pub(crate) fn from_raw(raw: u32) -> Symbol {
        Symbol(raw)
    }
}

/// Mutable, deduplicating interner used while names are collected.
/// [`InternerBuilder::freeze`] discards the lookup index and returns
/// the compact resolve-only [`Interner`].
#[derive(Debug, Default)]
pub struct InternerBuilder {
    buf: String,
    ends: Vec<u32>,
    /// Build-time lookup only — dropped by `freeze`, so duplicate
    /// string storage never survives into the retained artifact.
    index: HashMap<String, u32>,
}

impl InternerBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning the existing symbol if the exact string
    /// was interned before (dedup is by full string equality).
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&i) = self.index.get(s) {
            return Symbol(i);
        }
        let i = self.ends.len() as u32;
        self.buf.push_str(s);
        self.ends.push(self.buf.len() as u32);
        self.index.insert(s.to_string(), i);
        Symbol(i)
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Freeze into the compact resolve-only [`Interner`], dropping the
    /// build-time lookup index.
    pub fn freeze(self) -> Interner {
        Interner { buf: self.buf.into_boxed_str(), ends: self.ends.into_boxed_slice() }
    }
}

/// A frozen string arena: resolve-only, immutable, cheaply shared via
/// `Arc` between the lowering and every compiled artifact built from
/// it. Retained heap is `buf` (every distinct name's bytes, once) plus
/// one `u32` end offset per symbol.
#[derive(Debug)]
pub struct Interner {
    buf: Box<str>,
    ends: Box<[u32]>,
}

impl Interner {
    /// Rebuild a frozen interner from its raw arena and offset table.
    /// Crate-internal: the artifact decoder is the only caller, and it
    /// has already checked the offsets are monotone char boundaries.
    pub(crate) fn from_parts(buf: String, ends: Vec<u32>) -> Interner {
        Interner { buf: buf.into_boxed_str(), ends: ends.into_boxed_slice() }
    }

    /// The raw byte arena (artifact encoder only).
    pub(crate) fn buf(&self) -> &str {
        &self.buf
    }

    /// The raw end-offset table (artifact encoder only).
    pub(crate) fn ends(&self) -> &[u32] {
        &self.ends
    }

    /// The string a symbol stands for.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by the builder this interner
    /// was frozen from.
    pub fn resolve(&self, sym: Symbol) -> &str {
        let i = sym.index();
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.buf[start..self.ends[i] as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// `true` if the interner holds no strings.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Retained heap bytes: the byte arena plus the offset table. This
    /// is the number the scale-tier bench compares against the owned
    /// `String`-table baseline.
    pub fn heap_bytes(&self) -> usize {
        self.buf.len() + self.ends.len() * std::mem::size_of::<u32>()
    }
}

/// Sentinel for "no parent group" in [`Symbols::group_parent`] (the
/// group is a hierarchy root such as `top` or a top-level head).
const NO_PARENT: u32 = u32::MAX;

/// The interned name tables of one module: per-net, per-instance and
/// per-group symbols over one shared [`Interner`].
///
/// Built once per [`Lowering`](crate::Lowering) (or standalone via
/// [`Symbols::from_module`]) and handed to every compiled artifact —
/// engine `Program`, `CompiledSta`, `CompiledPower` — as `Arc` handles,
/// so a clone is a few reference-count bumps, never a table copy, and
/// no compiled artifact owns a per-net or per-instance `String` again.
#[derive(Debug, Clone)]
pub struct Symbols {
    pub(crate) interner: Arc<Interner>,
    /// Net name per dense net slot.
    pub(crate) net_syms: Arc<[Symbol]>,
    /// Instance name per instance index.
    pub(crate) inst_syms: Arc<[Symbol]>,
    /// Group id per instance index.
    pub(crate) inst_group: Arc<[u32]>,
    /// Full hierarchical group path per group id (`"regs/bank0"`).
    pub(crate) group_syms: Arc<[Symbol]>,
    /// Top-level head of each group path (`"regs"`), matching the
    /// reference power analyzer's breakdown keys.
    pub(crate) group_head_syms: Arc<[Symbol]>,
    /// Path-tree node per group id (see `node_*` below).
    pub(crate) group_node: Arc<[u32]>,
    /// The hierarchical path tree: one node per distinct group path
    /// *and per prefix of one* (`"regs/bank0"` contributes `"regs"` and
    /// `"regs/bank0"` even when only the latter was pushed as a group).
    /// Parents always precede children, so a single reverse pass rolls
    /// subtree aggregates up the hierarchy.
    pub(crate) node_syms: Arc<[Symbol]>,
    /// Parent node per node; `NO_PARENT` for hierarchy roots (the
    /// roots are exactly the top-level heads).
    pub(crate) node_parent: Arc<[u32]>,
    /// Boundary-port symbols, sorted by port name — the shared lookup
    /// table behind [`Symbols::port_net`], so simulation backends stop
    /// building per-executor `HashMap<String, NetId>` port tables.
    pub(crate) port_syms: Arc<[Symbol]>,
    /// Net slot bound to each entry of `port_syms` (same order).
    pub(crate) port_nets: Arc<[u32]>,
}

impl Symbols {
    /// Intern every net, instance and group name of `module` in one
    /// pass. Group heads (the path segment before the first `/`) and
    /// the per-group parent links are derived here, while the
    /// deduplicating builder index is still alive.
    pub fn from_module(module: &Module) -> Symbols {
        let mut b = InternerBuilder::new();
        let net_syms: Vec<Symbol> = module.nets.iter().map(|n| b.intern(&n.name)).collect();
        let inst_syms: Vec<Symbol> = module.instances.iter().map(|i| b.intern(&i.name)).collect();
        let inst_group: Vec<u32> = module.instances.iter().map(|i| i.group.0).collect();

        let mut group_syms = Vec::with_capacity(module.groups.len());
        let mut group_head_syms = Vec::with_capacity(module.groups.len());
        let mut group_node = Vec::with_capacity(module.groups.len());
        // Path tree keyed by full-path symbol: duplicate-named groups
        // share one node, and every `/`-prefix gets a node of its own
        // (created before its children, so node ids are topologically
        // ordered parents-first).
        let mut node_index: HashMap<Symbol, u32> = HashMap::new();
        let mut node_syms: Vec<Symbol> = Vec::new();
        let mut node_parent: Vec<u32> = Vec::new();
        for name in &module.groups {
            group_syms.push(b.intern(name));
            group_head_syms.push(b.intern(name.split('/').next().unwrap_or(name)));
            let mut parent = NO_PARENT;
            let mut node = NO_PARENT;
            let bounds = name.match_indices('/').map(|(i, _)| i).chain(std::iter::once(name.len()));
            for end in bounds {
                let sym = b.intern(&name[..end]);
                node = *node_index.entry(sym).or_insert_with(|| {
                    node_syms.push(sym);
                    node_parent.push(parent);
                    node_syms.len() as u32 - 1
                });
                parent = node;
            }
            group_node.push(node);
        }

        // Boundary ports, sorted by name once at build time so every
        // later lookup is an allocation-free binary search against the
        // shared table.
        let mut port_order: Vec<usize> = (0..module.ports.len()).collect();
        port_order.sort_by(|&a, &b| module.ports[a].name.cmp(&module.ports[b].name));
        let port_syms: Vec<Symbol> = port_order.iter().map(|&i| b.intern(&module.ports[i].name)).collect();
        let port_nets: Vec<u32> = port_order.iter().map(|&i| module.ports[i].net.index() as u32).collect();

        Symbols {
            interner: Arc::new(b.freeze()),
            net_syms: net_syms.into(),
            inst_syms: inst_syms.into(),
            inst_group: inst_group.into(),
            group_syms: group_syms.into(),
            group_head_syms: group_head_syms.into(),
            group_node: group_node.into(),
            node_syms: node_syms.into(),
            node_parent: node_parent.into(),
            port_syms: port_syms.into(),
            port_nets: port_nets.into(),
        }
    }

    /// The shared interner every symbol here resolves against.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Resolve any symbol produced by this table's interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Number of net slots.
    pub fn net_count(&self) -> usize {
        self.net_syms.len()
    }

    /// Number of instances.
    pub fn inst_count(&self) -> usize {
        self.inst_syms.len()
    }

    /// Number of groups (hierarchy nodes, not just heads).
    pub fn group_count(&self) -> usize {
        self.group_syms.len()
    }

    /// Interned name of net slot `slot`.
    pub fn net_sym(&self, slot: usize) -> Symbol {
        self.net_syms[slot]
    }

    /// Name of net slot `slot`.
    pub fn net_name(&self, slot: usize) -> &str {
        self.resolve(self.net_syms[slot])
    }

    /// Interned name of instance `inst`.
    pub fn inst_sym(&self, inst: usize) -> Symbol {
        self.inst_syms[inst]
    }

    /// Name of instance `inst`.
    pub fn inst_name(&self, inst: usize) -> &str {
        self.resolve(self.inst_syms[inst])
    }

    /// Group id of instance `inst`.
    pub fn group_of(&self, inst: usize) -> u32 {
        self.inst_group[inst]
    }

    /// Interned full path of group `gid` (e.g. `"regs/bank0"`).
    pub fn group_sym(&self, gid: u32) -> Symbol {
        self.group_syms[gid as usize]
    }

    /// Full hierarchical path of group `gid`.
    pub fn group_name(&self, gid: u32) -> &str {
        self.resolve(self.group_syms[gid as usize])
    }

    /// Interned top-level head of group `gid` (e.g. `"regs"`) — the
    /// key the power breakdown aggregates by.
    pub fn group_head_sym(&self, gid: u32) -> Symbol {
        self.group_head_syms[gid as usize]
    }

    /// The path-tree node carrying group `gid`'s full path.
    pub fn group_node(&self, gid: u32) -> u32 {
        self.group_node[gid as usize]
    }

    /// Number of nodes in the hierarchical path tree (distinct full
    /// paths plus every prefix of one).
    pub fn node_count(&self) -> usize {
        self.node_syms.len()
    }

    /// Interned full path of path-tree node `node`.
    pub fn node_sym(&self, node: u32) -> Symbol {
        self.node_syms[node as usize]
    }

    /// Full path of path-tree node `node`.
    pub fn node_name(&self, node: u32) -> &str {
        self.resolve(self.node_syms[node as usize])
    }

    /// Parent of path-tree node `node`, or `None` for hierarchy roots.
    /// Parent node ids are always smaller than their children's, so a
    /// reverse iteration over `0..node_count()` visits children before
    /// parents (the rollup order `CompiledPower::by_path_pj` relies
    /// on).
    pub fn node_parent(&self, node: u32) -> Option<u32> {
        let p = self.node_parent[node as usize];
        (p != NO_PARENT).then_some(p)
    }

    /// Number of boundary ports.
    pub fn port_count(&self) -> usize {
        self.port_syms.len()
    }

    /// Net slot bound to the boundary port `name`, by binary search
    /// over the shared sorted port table — no per-caller name map, no
    /// allocation. This is the lookup the simulation backends'
    /// `net_of` helpers ride.
    pub fn port_net(&self, name: &str) -> Option<u32> {
        self.port_syms.binary_search_by(|&s| self.resolve(s).cmp(name)).ok().map(|i| self.port_nets[i])
    }

    /// Retained heap bytes of the symbol tables *plus* the shared
    /// interner (counted once — every artifact holding this `Symbols`
    /// shares the same allocations).
    pub fn heap_bytes(&self) -> usize {
        let sym = std::mem::size_of::<Symbol>();
        self.net_syms.len() * sym
            + self.inst_syms.len() * sym
            + self.inst_group.len() * std::mem::size_of::<u32>()
            + self.group_syms.len() * sym
            + self.group_head_syms.len() * sym
            + self.group_node.len() * std::mem::size_of::<u32>()
            + self.node_syms.len() * sym
            + self.node_parent.len() * std::mem::size_of::<u32>()
            + self.port_syms.len() * sym
            + self.port_nets.len() * std::mem::size_of::<u32>()
            + self.interner.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::CellLibrary;

    #[test]
    fn intern_round_trips_and_dedups() {
        let mut b = InternerBuilder::new();
        let a1 = b.intern("alpha");
        let beta = b.intern("beta");
        let a2 = b.intern("alpha");
        let empty = b.intern("");
        assert_eq!(a1, a2, "equal strings must intern to one symbol");
        assert_ne!(a1, beta);
        assert_eq!(b.len(), 3, "dedup: three distinct strings");
        let frozen = b.freeze();
        assert_eq!(frozen.resolve(a1), "alpha");
        assert_eq!(frozen.resolve(beta), "beta");
        assert_eq!(frozen.resolve(empty), "");
        assert_eq!(frozen.len(), 3);
        assert_eq!(frozen.heap_bytes(), "alphabeta".len() + 3 * 4);
    }

    #[test]
    fn symbols_mirror_module_names() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("m", &lib);
        let a = b.input("a");
        b.push_group("regs");
        b.push_group("bank0");
        let q = b.dff(a);
        b.pop_group();
        b.pop_group();
        b.output("q", q);
        let m = b.finish();
        let syms = Symbols::from_module(&m);
        assert_eq!(syms.net_count(), m.net_count());
        assert_eq!(syms.inst_count(), m.instance_count());
        for (i, net) in m.nets.iter().enumerate() {
            assert_eq!(syms.net_name(i), net.name);
        }
        for (i, inst) in m.instances.iter().enumerate() {
            assert_eq!(syms.inst_name(i), inst.name);
            assert_eq!(syms.group_of(i), inst.group.0);
            assert_eq!(syms.group_name(inst.group.0), m.group_name(inst.group));
        }
    }

    #[test]
    fn path_tree_follows_prefixes_and_synthesizes_missing_ancestors() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("m", &lib);
        let a = b.input("a");
        let g_regs = b.push_group("regs");
        let g_bank = b.push_group("bank0");
        let q = b.dff(a);
        b.pop_group();
        b.pop_group();
        // A slash inside one push: `mem/word0` has no explicit `mem`
        // group — the tree must synthesize the prefix node.
        let g_word = b.push_group("mem/word0");
        let y = b.not(q);
        b.pop_group();
        b.output("y", y);
        let m = b.finish();
        let syms = Symbols::from_module(&m);

        let top = syms.group_node(0);
        assert_eq!(syms.node_parent(top), None, "top is a root");
        let regs = syms.group_node(g_regs.0);
        let bank = syms.group_node(g_bank.0);
        assert_eq!(syms.node_parent(regs), None, "`regs` is a root (no `top/` prefix)");
        assert_eq!(syms.node_parent(bank), Some(regs), "`regs/bank0` hangs under `regs`");
        assert!(regs < bank, "parents precede children");
        let word = syms.group_node(g_word.0);
        let mem = syms.node_parent(word).expect("synthesized `mem` prefix node");
        assert_eq!(syms.node_name(mem), "mem");
        assert_eq!(syms.node_parent(mem), None);
        assert_eq!(syms.node_name(word), "mem/word0");

        assert_eq!(syms.resolve(syms.group_head_sym(g_bank.0)), "regs");
        assert_eq!(syms.resolve(syms.group_head_sym(g_word.0)), "mem");
        assert_eq!(syms.resolve(syms.group_head_sym(0)), "top");
    }

    #[test]
    fn port_lookup_matches_module_ports() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("m", &lib);
        let xs = b.input_bus("x", 4);
        let a = b.input("a");
        let y = b.not(a);
        b.output_bus("z", &xs);
        b.output("y", y);
        let m = b.finish();
        let syms = Symbols::from_module(&m);
        assert_eq!(syms.port_count(), m.ports.len());
        for p in &m.ports {
            assert_eq!(syms.port_net(&p.name), Some(p.net.index() as u32), "port `{}`", p.name);
        }
        assert_eq!(syms.port_net("nonexistent"), None);
    }

    #[test]
    fn clones_share_the_interner() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("m", &lib);
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let m = b.finish();
        let syms = Symbols::from_module(&m);
        let clone = syms.clone();
        assert!(Arc::ptr_eq(syms.interner(), clone.interner()), "clone must share, not copy");
    }
}
