//! The `.scim` persistent-artifact framing layer (`syndcim-artifact-v1`).
//!
//! The compiled trinity — engine `Program`, `CompiledSta`,
//! `CompiledPower`, all sharing one interned [`Symbols`] layer — exists
//! only in memory, so every process re-pays lowering plus trinity
//! compilation before answering a single query. This module defines the
//! on-disk container those programs serialize into, so a macro is
//! compiled once and served from disk by any number of processes:
//!
//! ```text
//! [ 8B magic "SCIMART1" ][ u32 version = 1 ][ u32 section count ]
//! [ u32 id ][ u64 payload len ][ u32 crc32 ][ payload … ]   × count
//! ```
//!
//! Every section payload is CRC-checksummed (CRC-32/IEEE) and length
//! prefixed; inside a payload, every variable-length vector carries its
//! own element count which is validated against the *actually present*
//! bytes before any allocation, so a corrupt or adversarial length
//! field can neither over-allocate nor read out of bounds. Decoding
//! never panics: every malformed input — bad magic, unsupported
//! version, truncation at any byte, oversized declared lengths,
//! checksum corruption, dangling indices — surfaces as a typed
//! [`ArtifactError`]. Pinned by `tests/artifact_corruption.rs`.
//!
//! The split of responsibilities mirrors the compiled trinity itself:
//! this module owns the *framing* ([`SectionWriter`] / [`SectionReader`]
//! / [`ArtifactReader`]) plus the codecs for the IR-owned types
//! ([`Symbols`], [`Lowering`], and the shared `Process` record); the
//! engine, STA and power crates each encode their own program into one
//! section through the same API, and `syndcim_core::CompiledMacro`
//! assembles the sections into a file.

use std::sync::Arc;

use syndcim_netlist::{Connectivity, Driver, InstId};
use syndcim_pdk::Process;

use crate::intern::{Interner, Symbol, Symbols};
use crate::lowering::Lowering;

/// The 8-byte file magic: `syndcim-artifact`, format generation 1.
pub const MAGIC: [u8; 8] = *b"SCIMART1";

/// Container format version this build writes and the only one it
/// reads. Bump on any layout change; readers reject other versions
/// with [`ArtifactError::UnsupportedVersion`].
pub const FORMAT_VERSION: u32 = 1;

/// Hard decode limit on one section's declared payload length. A
/// declared length beyond this is rejected *before* any allocation or
/// read — a corrupt 8-byte length field must never turn into a
/// multi-gigabyte allocation.
pub const MAX_SECTION_BYTES: u64 = 1 << 30;

/// Hard decode limit on one vector's declared element count. Element
/// counts are additionally validated against the bytes actually
/// remaining in the section, which is the binding check; this cap just
/// keeps the arithmetic comfortably overflow-free.
pub const MAX_ELEMENTS: u32 = u32::MAX / 16;

/// Recommended file extension for serialized artifacts.
pub const EXTENSION: &str = "scim";

/// Identity of one section in a `.scim` container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionId {
    /// Producer metadata: format/producer strings, net/instance counts.
    Meta,
    /// The interned name layer: arena bytes + every symbol table.
    Symbols,
    /// The shared lowering: connectivity tables + levelized order.
    Lowering,
    /// The engine simulation program (bit-packed op stream + commits).
    Program,
    /// The compiled timing program (launch/arc/endpoint SoA columns).
    Sta,
    /// The compiled power program (capacitance/energy/group columns).
    Power,
}

impl SectionId {
    /// All sections of a v1 artifact, in canonical file order.
    pub const ALL: [SectionId; 6] = [
        SectionId::Meta,
        SectionId::Symbols,
        SectionId::Lowering,
        SectionId::Program,
        SectionId::Sta,
        SectionId::Power,
    ];

    /// The on-disk section tag.
    pub fn code(self) -> u32 {
        match self {
            SectionId::Meta => 1,
            SectionId::Symbols => 2,
            SectionId::Lowering => 3,
            SectionId::Program => 4,
            SectionId::Sta => 5,
            SectionId::Power => 6,
        }
    }

    /// Decode an on-disk section tag.
    pub fn from_code(code: u32) -> Option<SectionId> {
        SectionId::ALL.into_iter().find(|s| s.code() == code)
    }

    /// Human-readable section name (`info` output, error messages).
    pub fn name(self) -> &'static str {
        match self {
            SectionId::Meta => "meta",
            SectionId::Symbols => "symbols",
            SectionId::Lowering => "lowering",
            SectionId::Program => "program",
            SectionId::Sta => "sta",
            SectionId::Power => "power",
        }
    }
}

impl std::fmt::Display for SectionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Every way reading or writing a `.scim` artifact can fail. Decoding
/// is total: any byte sequence maps to either a valid artifact or one
/// of these variants — never a panic, never an unbounded allocation.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic {
        /// What was found instead (zero-padded if the file is shorter).
        found: [u8; 8],
    },
    /// The container version is not [`FORMAT_VERSION`] (future *or*
    /// past versions are rejected — v1 readers read v1 files only).
    UnsupportedVersion {
        /// The version field as read.
        found: u32,
    },
    /// The input ended before a structure could be fully read.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes the structure needed.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A section declared a payload length beyond [`MAX_SECTION_BYTES`].
    SectionTooLarge {
        /// The offending section tag (raw, may itself be corrupt).
        code: u32,
        /// The declared payload length.
        declared: u64,
    },
    /// A vector declared more elements than its section can hold.
    CountTooLarge {
        /// Which section the vector lives in.
        section: SectionId,
        /// The declared element count.
        declared: u64,
    },
    /// A section's payload bytes do not match the stored checksum.
    ChecksumMismatch {
        /// The corrupt section.
        section: SectionId,
        /// Checksum stored in the section header.
        stored: u32,
        /// Checksum computed over the payload as read.
        computed: u32,
    },
    /// A section tag is not part of the v1 format.
    UnknownSection {
        /// The unrecognized tag.
        code: u32,
    },
    /// The same section appears twice.
    DuplicateSection {
        /// The repeated section.
        section: SectionId,
    },
    /// A required section is absent.
    MissingSection {
        /// The absent section.
        section: SectionId,
    },
    /// Bytes remain after the declared number of sections.
    TrailingBytes {
        /// How many bytes follow the last section.
        count: u64,
    },
    /// A section decoded structurally but its content is inconsistent
    /// (dangling index, non-monotone offset table, invalid UTF-8, …).
    Malformed {
        /// Which section is inconsistent.
        section: SectionId,
        /// What exactly is wrong.
        what: String,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::BadMagic { found } => {
                write!(f, "not a syndcim artifact: bad magic {found:02x?} (expected {MAGIC:02x?})")
            }
            ArtifactError::UnsupportedVersion { found } => {
                write!(f, "unsupported artifact version {found} (this build reads v{FORMAT_VERSION} only)")
            }
            ArtifactError::Truncated { what, needed, available } => {
                write!(f, "truncated artifact: {what} needs {needed} byte(s), only {available} available")
            }
            ArtifactError::SectionTooLarge { code, declared } => {
                write!(
                    f,
                    "section tag {code} declares {declared} payload bytes, above the {MAX_SECTION_BYTES}-byte decode limit"
                )
            }
            ArtifactError::CountTooLarge { section, declared } => {
                write!(f, "`{section}` section declares an implausible element count {declared}")
            }
            ArtifactError::ChecksumMismatch { section, stored, computed } => {
                write!(
                    f,
                    "`{section}` section checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            ArtifactError::UnknownSection { code } => write!(f, "unknown section tag {code}"),
            ArtifactError::DuplicateSection { section } => write!(f, "duplicate `{section}` section"),
            ArtifactError::MissingSection { section } => write!(f, "missing `{section}` section"),
            ArtifactError::TrailingBytes { count } => {
                write!(f, "{count} trailing byte(s) after the last declared section")
            }
            ArtifactError::Malformed { section, what } => write!(f, "malformed `{section}` section: {what}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// Slicing-by-8 lookup tables for the reflected CRC-32 polynomial,
/// generated at compile time. `CRC_TABLES[0]` is the classic byte
/// table; `CRC_TABLES[j]` advances a byte `j` positions further into
/// the stream, letting the hot loop fold 8 input bytes per step.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = (c >> 1) ^ (0xEDB8_8320 & (c & 1).wrapping_neg());
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
};

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the checksum guarding
/// every section payload. Slicing-by-8: sections are megabytes at the
/// scale tier and the checksum runs on both save and load, so this
/// loop sits directly on the compile-once/serve-many path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------
// Section payload encoding
// ---------------------------------------------------------------------

/// Builder for one section's payload. All integers are little-endian;
/// vectors are `u32 count` followed by packed elements. Finish with
/// [`ArtifactWriter::write_section`], which frames the payload with its
/// tag, length and checksum.
#[derive(Debug, Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// An empty payload builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Payload bytes so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its little-endian IEEE-754 bit pattern
    /// (exact: decoding returns the identical bits, so serialized
    /// programs stay bit-identical to their in-memory originals).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a count-prefixed `u32` vector.
    pub fn put_u32s(&mut self, vs: &[u32]) {
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Append a count-prefixed `f64` vector.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Append a count-prefixed [`Symbol`] vector (as dense `u32` ids).
    pub fn put_symbols(&mut self, vs: &[Symbol]) {
        self.put_u32(vs.len() as u32);
        for &s in vs {
            self.put_u32(s.index() as u32);
        }
    }

    /// The finished payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over one section's checksum-verified payload. Every read
/// validates against the bytes actually present before touching them,
/// and every element count is checked against the remaining payload
/// before any allocation.
#[derive(Debug)]
pub struct SectionReader<'a> {
    section: SectionId,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    /// A reader over `bytes`, attributing errors to `section`.
    pub fn new(section: SectionId, bytes: &'a [u8]) -> Self {
        SectionReader { section, bytes, pos: 0 }
    }

    /// The section this reader is decoding.
    pub fn section(&self) -> SectionId {
        self.section
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// A [`ArtifactError::Malformed`] attributed to this section.
    pub fn malformed(&self, what: impl Into<String>) -> ArtifactError {
        ArtifactError::Malformed { section: self.section, what: what.into() }
    }

    /// Fail unless the payload was consumed exactly.
    pub fn finish(self) -> Result<(), ArtifactError> {
        if self.remaining() != 0 {
            return Err(self.malformed(format!("{} unread byte(s) at end of section", self.remaining())));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ArtifactError> {
        if self.remaining() < n {
            return Err(ArtifactError::Truncated {
                what,
                needed: n as u64,
                available: self.remaining() as u64,
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, ArtifactError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4-byte slice")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8-byte slice")))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self, what: &'static str) -> Result<f64, ArtifactError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().expect("8-byte slice")))
    }

    /// Read an element count and validate it against the bytes actually
    /// remaining (`elem_bytes` per element), so a corrupt count can
    /// never drive an allocation past the real payload.
    pub fn get_count(&mut self, elem_bytes: usize, what: &'static str) -> Result<usize, ArtifactError> {
        let n = self.get_u32(what)?;
        if n > MAX_ELEMENTS {
            return Err(ArtifactError::CountTooLarge { section: self.section, declared: n as u64 });
        }
        let needed = n as u64 * elem_bytes as u64;
        if needed > self.remaining() as u64 {
            return Err(ArtifactError::Truncated { what, needed, available: self.remaining() as u64 });
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &'static str) -> Result<String, ArtifactError> {
        let n = self.get_count(1, what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.malformed(format!("{what}: invalid UTF-8")))
    }

    /// Read a count-prefixed `u32` vector.
    pub fn get_u32s(&mut self, what: &'static str) -> Result<Vec<u32>, ArtifactError> {
        let n = self.get_count(4, what)?;
        let bytes = self.take(n * 4, what)?;
        Ok(bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk"))).collect())
    }

    /// Read a count-prefixed `f64` vector.
    pub fn get_f64s(&mut self, what: &'static str) -> Result<Vec<f64>, ArtifactError> {
        let n = self.get_count(8, what)?;
        let bytes = self.take(n * 8, what)?;
        Ok(bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk"))).collect())
    }

    /// Read a count-prefixed symbol vector, validating every id against
    /// `interner_len` so later lazy resolution cannot go out of bounds.
    pub fn get_symbols(
        &mut self,
        interner_len: usize,
        what: &'static str,
    ) -> Result<Vec<Symbol>, ArtifactError> {
        let raw = self.get_u32s(what)?;
        raw.into_iter()
            .map(|v| {
                if (v as usize) < interner_len {
                    Ok(Symbol::from_raw(v))
                } else {
                    Err(self.malformed(format!("{what}: symbol id {v} outside interner of {interner_len}")))
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Container framing
// ---------------------------------------------------------------------

/// Streaming writer of a `.scim` container: header first, then each
/// section framed and checksummed as it is finished, so nothing but
/// the current section payload is ever buffered.
#[derive(Debug)]
pub struct ArtifactWriter<W: std::io::Write> {
    w: W,
    declared: u32,
    written: u32,
}

impl<W: std::io::Write> ArtifactWriter<W> {
    /// Write the container header declaring `sections` sections.
    pub fn new(mut w: W, sections: u32) -> Result<Self, ArtifactError> {
        w.write_all(&MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&sections.to_le_bytes())?;
        Ok(ArtifactWriter { w, declared: sections, written: 0 })
    }

    /// Frame and write one finished section payload.
    pub fn write_section(&mut self, id: SectionId, payload: SectionWriter) -> Result<(), ArtifactError> {
        let payload = payload.into_bytes();
        self.w.write_all(&id.code().to_le_bytes())?;
        self.w.write_all(&(payload.len() as u64).to_le_bytes())?;
        self.w.write_all(&crc32(&payload).to_le_bytes())?;
        self.w.write_all(&payload)?;
        self.written += 1;
        Ok(())
    }

    /// Flush and return the inner writer.
    ///
    /// # Panics
    ///
    /// Panics if the number of sections written differs from the count
    /// declared in the header — a writer-side bug, never an input
    /// condition.
    pub fn finish(mut self) -> Result<W, ArtifactError> {
        assert_eq!(self.written, self.declared, "artifact writer declared/written section count mismatch");
        self.w.flush()?;
        Ok(self.w)
    }
}

/// One section's location inside a parsed container.
#[derive(Debug, Clone, Copy)]
pub struct SectionEntry {
    /// Which section.
    pub id: SectionId,
    /// Byte offset of the section *header* within the file.
    pub header_offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Checksum stored in the header.
    pub stored_crc: u32,
}

/// A parsed (but not yet decoded) `.scim` container over borrowed
/// bytes: the header is validated and every section located; payload
/// checksums are verified on access.
#[derive(Debug)]
pub struct ArtifactReader<'a> {
    bytes: &'a [u8],
    entries: Vec<SectionEntry>,
}

impl<'a> ArtifactReader<'a> {
    /// Parse the container framing of `bytes`: magic, version, and the
    /// section table (ids, bounds, stored checksums). Payload contents
    /// are not touched — use [`ArtifactReader::section`] to get a
    /// checksum-verified payload.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, ArtifactError> {
        if bytes.len() < 8 {
            let mut found = [0u8; 8];
            found[..bytes.len()].copy_from_slice(bytes);
            return Err(ArtifactError::BadMagic { found });
        }
        if bytes[..8] != MAGIC {
            return Err(ArtifactError::BadMagic { found: bytes[..8].try_into().expect("8 bytes") });
        }
        if bytes.len() < 16 {
            return Err(ArtifactError::Truncated {
                what: "container header",
                needed: 16,
                available: bytes.len() as u64,
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion { found: version });
        }
        let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));

        let mut entries = Vec::new();
        let mut pos = 16u64;
        let total = bytes.len() as u64;
        for _ in 0..count {
            if total - pos < 16 {
                return Err(ArtifactError::Truncated {
                    what: "section header",
                    needed: 16,
                    available: total - pos,
                });
            }
            let p = pos as usize;
            let code = u32::from_le_bytes(bytes[p..p + 4].try_into().expect("4 bytes"));
            let len = u64::from_le_bytes(bytes[p + 4..p + 12].try_into().expect("8 bytes"));
            let stored_crc = u32::from_le_bytes(bytes[p + 12..p + 16].try_into().expect("4 bytes"));
            if len > MAX_SECTION_BYTES {
                return Err(ArtifactError::SectionTooLarge { code, declared: len });
            }
            let id = SectionId::from_code(code).ok_or(ArtifactError::UnknownSection { code })?;
            if entries.iter().any(|e: &SectionEntry| e.id == id) {
                return Err(ArtifactError::DuplicateSection { section: id });
            }
            if total - pos - 16 < len {
                return Err(ArtifactError::Truncated {
                    what: "section payload",
                    needed: len,
                    available: total - pos - 16,
                });
            }
            entries.push(SectionEntry { id, header_offset: pos, len, stored_crc });
            pos += 16 + len;
        }
        if pos != total {
            return Err(ArtifactError::TrailingBytes { count: total - pos });
        }
        Ok(ArtifactReader { bytes, entries })
    }

    /// The located sections, in file order.
    pub fn entries(&self) -> &[SectionEntry] {
        &self.entries
    }

    /// Total container size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The checksum-verified payload of section `id`.
    pub fn section(&self, id: SectionId) -> Result<&'a [u8], ArtifactError> {
        let e =
            self.entries.iter().find(|e| e.id == id).ok_or(ArtifactError::MissingSection { section: id })?;
        let start = e.header_offset as usize + 16;
        let payload = &self.bytes[start..start + e.len as usize];
        let computed = crc32(payload);
        if computed != e.stored_crc {
            return Err(ArtifactError::ChecksumMismatch { section: id, stored: e.stored_crc, computed });
        }
        Ok(payload)
    }

    /// A [`SectionReader`] over the checksum-verified payload of `id`.
    pub fn reader(&self, id: SectionId) -> Result<SectionReader<'a>, ArtifactError> {
        Ok(SectionReader::new(id, self.section(id)?))
    }

    /// Verify every section's checksum (the `syndcim verify` fast
    /// pass). Returns the number of sections checked.
    pub fn verify_checksums(&self) -> Result<usize, ArtifactError> {
        for e in &self.entries {
            self.section(e.id)?;
        }
        Ok(self.entries.len())
    }
}

// ---------------------------------------------------------------------
// Meta section
// ---------------------------------------------------------------------

/// Producer metadata stored in the [`SectionId::Meta`] section. All
/// fields are deterministic — no timestamps or host names — so the same
/// compile always serializes to byte-identical artifacts (which is what
/// lets `syndcim verify` compare a file against a fresh compile
/// byte-for-byte).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// Format identifier (`"syndcim-artifact"`).
    pub format: String,
    /// Producing package version (`CARGO_PKG_VERSION` of the writer).
    pub producer: String,
    /// Net count of the serialized macro.
    pub net_count: u64,
    /// Instance count of the serialized macro.
    pub inst_count: u64,
}

impl ArtifactMeta {
    /// Encode into a payload.
    pub fn encode(&self) -> SectionWriter {
        let mut w = SectionWriter::new();
        w.put_str(&self.format);
        w.put_str(&self.producer);
        w.put_u64(self.net_count);
        w.put_u64(self.inst_count);
        w
    }

    /// Decode from a payload.
    pub fn decode(r: &mut SectionReader<'_>) -> Result<Self, ArtifactError> {
        let format = r.get_str("meta format")?;
        let producer = r.get_str("meta producer")?;
        let net_count = r.get_u64("meta net count")?;
        let inst_count = r.get_u64("meta instance count")?;
        Ok(ArtifactMeta { format, producer, net_count, inst_count })
    }
}

// ---------------------------------------------------------------------
// Process codec (shared by the STA and power sections)
// ---------------------------------------------------------------------

/// Encode a [`Process`] record (name + every scaling parameter).
pub fn put_process(w: &mut SectionWriter, p: &Process) {
    w.put_str(p.name);
    for v in [
        p.tau_ps,
        p.vdd_nom_v,
        p.vth_v,
        p.alpha,
        p.temp_nom_c,
        p.cin_unit_ff,
        p.wire_cap_ff_per_um,
        p.wire_res_ohm_per_um,
        p.area_per_t_logic_um2,
        p.area_per_t_sram_um2,
        p.row_height_um,
        p.site_width_um,
        p.leak_per_t_nw,
    ] {
        w.put_f64(v);
    }
}

/// Decode a [`Process`] record written by [`put_process`].
pub fn get_process(r: &mut SectionReader<'_>) -> Result<Process, ArtifactError> {
    let name = r.get_str("process name")?;
    // `Process::name` is `&'static str`; the known node resolves to its
    // static literal, anything else leaks its (short) name once per
    // load — artifacts for custom nodes stay loadable without
    // redesigning the PDK types.
    let name: &'static str = match name.as_str() {
        "syn40" => "syn40",
        _ => Box::leak(name.into_boxed_str()),
    };
    let mut f = [0f64; 13];
    for v in f.iter_mut() {
        *v = r.get_f64("process parameter")?;
    }
    Ok(Process {
        name,
        tau_ps: f[0],
        vdd_nom_v: f[1],
        vth_v: f[2],
        alpha: f[3],
        temp_nom_c: f[4],
        cin_unit_ff: f[5],
        wire_cap_ff_per_um: f[6],
        wire_res_ohm_per_um: f[7],
        area_per_t_logic_um2: f[8],
        area_per_t_sram_um2: f[9],
        row_height_um: f[10],
        site_width_um: f[11],
        leak_per_t_nw: f[12],
    })
}

// ---------------------------------------------------------------------
// Symbols codec
// ---------------------------------------------------------------------

/// Validate that `v` is a legal index below `limit` (dense-id table
/// cross-check used throughout the decoders).
fn check_index(r: &SectionReader<'_>, v: u32, limit: usize, what: &'static str) -> Result<(), ArtifactError> {
    if (v as usize) < limit {
        Ok(())
    } else {
        Err(r.malformed(format!("{what}: index {v} out of range (limit {limit})")))
    }
}

/// Sentinel mirrored from `intern.rs`: "no parent node".
const NO_PARENT: u32 = u32::MAX;

/// Encode the interned name layer: the frozen arena plus every symbol
/// table of [`Symbols`].
pub fn encode_symbols(syms: &Symbols) -> SectionWriter {
    let mut w = SectionWriter::new();
    let interner = syms.interner();
    w.put_str(interner.buf());
    w.put_u32s(interner.ends());
    w.put_symbols(&syms.net_syms);
    w.put_symbols(&syms.inst_syms);
    w.put_u32s(&syms.inst_group);
    w.put_symbols(&syms.group_syms);
    w.put_symbols(&syms.group_head_syms);
    w.put_u32s(&syms.group_node);
    w.put_symbols(&syms.node_syms);
    w.put_u32s(&syms.node_parent);
    w.put_symbols(&syms.port_syms);
    w.put_u32s(&syms.port_nets);
    w
}

/// Decode and fully validate the interned name layer. Every invariant
/// the in-memory accessors rely on is re-checked here — arena offsets
/// monotone and on char boundaries, every symbol id inside the arena,
/// group/node/port cross-references dense — so no later lazy resolve
/// can panic on a hostile artifact.
pub fn decode_symbols(r: &mut SectionReader<'_>) -> Result<Symbols, ArtifactError> {
    let buf = r.get_str("interner arena")?;
    let ends = r.get_u32s("interner offsets")?;
    let mut prev = 0u32;
    for &e in &ends {
        if e < prev || e as usize > buf.len() || !buf.is_char_boundary(e as usize) {
            return Err(r.malformed(format!("interner offset {e} not a monotone char boundary")));
        }
        prev = e;
    }
    let interner = Arc::new(Interner::from_parts(buf, ends));
    let n_syms = interner.len();

    let net_syms = r.get_symbols(n_syms, "net symbols")?;
    let inst_syms = r.get_symbols(n_syms, "instance symbols")?;
    let inst_group = r.get_u32s("instance groups")?;
    let group_syms = r.get_symbols(n_syms, "group symbols")?;
    let group_head_syms = r.get_symbols(n_syms, "group head symbols")?;
    let group_node = r.get_u32s("group nodes")?;
    let node_syms = r.get_symbols(n_syms, "node symbols")?;
    let node_parent = r.get_u32s("node parents")?;
    let port_syms = r.get_symbols(n_syms, "port symbols")?;
    let port_nets = r.get_u32s("port nets")?;

    let groups = group_syms.len();
    let nodes = node_syms.len();
    if group_head_syms.len() != groups || group_node.len() != groups {
        return Err(r.malformed("group table lengths disagree"));
    }
    if node_parent.len() != nodes {
        return Err(r.malformed("node table lengths disagree"));
    }
    if inst_group.len() != inst_syms.len() {
        return Err(r.malformed("instance group table length disagrees with instance count"));
    }
    for &g in &inst_group {
        check_index(r, g, groups, "instance group id")?;
    }
    for &n in &group_node {
        check_index(r, n, nodes, "group path node")?;
    }
    for (i, &p) in node_parent.iter().enumerate() {
        // Parents must precede children: the power rollup's single
        // reverse pass depends on it.
        if p != NO_PARENT && p as usize >= i {
            return Err(r.malformed(format!("node {i} parent {p} not topologically earlier")));
        }
    }
    if port_nets.len() != port_syms.len() {
        return Err(r.malformed("port table lengths disagree"));
    }
    for &n in &port_nets {
        check_index(r, n, net_syms.len(), "port net slot")?;
    }
    // `port_net` binary-searches by resolved name; a non-sorted table
    // would silently mis-resolve, so reject it here.
    for pair in port_syms.windows(2) {
        if interner.resolve(pair[0]) >= interner.resolve(pair[1]) {
            return Err(r.malformed("port symbols not strictly sorted by name"));
        }
    }

    Ok(Symbols {
        interner,
        net_syms: net_syms.into(),
        inst_syms: inst_syms.into(),
        inst_group: inst_group.into(),
        group_syms: group_syms.into(),
        group_head_syms: group_head_syms.into(),
        group_node: group_node.into(),
        node_syms: node_syms.into(),
        node_parent: node_parent.into(),
        port_syms: port_syms.into(),
        port_nets: port_nets.into(),
    })
}

// ---------------------------------------------------------------------
// Lowering codec
// ---------------------------------------------------------------------

/// Driver tag bytes in the lowering section.
const DRIVER_NONE: u8 = 0;
const DRIVER_PORT: u8 = 1;
const DRIVER_INST: u8 = 2;

/// Encode the shared lowering: the per-net driver table, the sink CSR
/// and the levelized instance order. Loading these tables back is what
/// makes `CompiledMacro::load` *wiring-only* — no connectivity build,
/// no levelization, no interning ever re-runs.
pub fn encode_lowering(low: &Lowering) -> SectionWriter {
    let mut w = SectionWriter::new();
    w.put_u64(low.net_count() as u64);
    w.put_u8(u8::from(low.is_validated()));
    let order: Vec<u32> = low.order().iter().map(|id| id.0).collect();
    w.put_u32s(&order);

    let conn = low.connectivity();
    w.put_u32(conn.driver.len() as u32);
    for d in &conn.driver {
        match *d {
            Driver::None => w.put_u8(DRIVER_NONE),
            Driver::Port => w.put_u8(DRIVER_PORT),
            Driver::Inst { inst, pin } => {
                w.put_u8(DRIVER_INST);
                w.put_u32(inst.0);
                w.put_u32(pin as u32);
            }
        }
    }
    // Sink CSR: offsets then flattened (inst, pin) pairs.
    let mut offsets = Vec::with_capacity(conn.sinks.len() + 1);
    let mut flat: Vec<u32> = Vec::new();
    offsets.push(0u32);
    for sinks in &conn.sinks {
        for &(inst, pin) in sinks {
            flat.push(inst.0);
            flat.push(pin as u32);
        }
        offsets.push((flat.len() / 2) as u32);
    }
    w.put_u32s(&offsets);
    w.put_u32s(&flat);
    w
}

/// Decode the shared lowering against the already-decoded `symbols`
/// (net and instance counts cross-check the symbol tables).
pub fn decode_lowering(r: &mut SectionReader<'_>, symbols: &Symbols) -> Result<Lowering, ArtifactError> {
    let net_count = r.get_u64("lowering net count")? as usize;
    if net_count != symbols.net_count() {
        return Err(
            r.malformed(format!("net count {net_count} disagrees with symbols ({})", symbols.net_count()))
        );
    }
    let inst_count = symbols.inst_count();
    let validated = match r.get_u8("lowering validated flag")? {
        0 => false,
        1 => true,
        v => return Err(r.malformed(format!("validated flag must be 0/1, got {v}"))),
    };
    let order_raw = r.get_u32s("levelized order")?;
    for &i in &order_raw {
        check_index(r, i, inst_count, "levelized order instance")?;
    }
    let order: Vec<InstId> = order_raw.into_iter().map(InstId).collect();

    let driver_count = r.get_count(1, "driver table")?;
    if driver_count != net_count {
        return Err(r.malformed(format!("driver table covers {driver_count} nets, expected {net_count}")));
    }
    let mut driver = Vec::with_capacity(driver_count);
    for _ in 0..driver_count {
        driver.push(match r.get_u8("driver tag")? {
            DRIVER_NONE => Driver::None,
            DRIVER_PORT => Driver::Port,
            DRIVER_INST => {
                let inst = r.get_u32("driver instance")?;
                check_index(r, inst, inst_count, "driver instance")?;
                let pin = r.get_u32("driver pin")?;
                Driver::Inst { inst: InstId(inst), pin: pin as usize }
            }
            t => return Err(r.malformed(format!("unknown driver tag {t}"))),
        });
    }
    let offsets = r.get_u32s("sink offsets")?;
    let flat = r.get_u32s("sink pairs")?;
    if offsets.len() != net_count + 1 || offsets.first() != Some(&0) {
        return Err(r.malformed("sink offset table has wrong shape"));
    }
    if flat.len() % 2 != 0 || offsets.last().copied().unwrap_or(0) as usize != flat.len() / 2 {
        return Err(r.malformed("sink pair table disagrees with offsets"));
    }
    for pair in offsets.windows(2) {
        if pair[0] > pair[1] {
            return Err(r.malformed("sink offsets not monotone"));
        }
    }
    let mut sinks: Vec<Vec<(InstId, usize)>> = Vec::with_capacity(net_count);
    for net in 0..net_count {
        let (s, e) = (offsets[net] as usize, offsets[net + 1] as usize);
        let mut v = Vec::with_capacity(e - s);
        for k in s..e {
            let inst = flat[2 * k];
            check_index(r, inst, inst_count, "sink instance")?;
            v.push((InstId(inst), flat[2 * k + 1] as usize));
        }
        sinks.push(v);
    }

    let conn = Connectivity { driver, sinks };
    Ok(Lowering::from_parts(conn, order, net_count, symbols.clone(), validated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::CellLibrary;

    fn sample_symbols() -> (Symbols, Lowering) {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("m", &lib);
        let a = b.input("a");
        b.push_group("regs/bank0");
        let q = b.dff(a);
        b.pop_group();
        let y = b.not(q);
        b.output("y", y);
        let m = b.finish();
        let low = Lowering::validated(&m, &lib).unwrap();
        (low.symbols().clone(), low)
    }

    fn roundtrip_section(id: SectionId, payload: SectionWriter) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = ArtifactWriter::new(&mut out, 1).unwrap();
        w.write_section(id, payload).unwrap();
        w.finish().unwrap();
        out
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn container_roundtrip_and_checksum_detection() {
        let mut payload = SectionWriter::new();
        payload.put_u32s(&[1, 2, 3]);
        let bytes = roundtrip_section(SectionId::Meta, payload);
        let reader = ArtifactReader::parse(&bytes).unwrap();
        assert_eq!(reader.entries().len(), 1);
        let mut r = reader.reader(SectionId::Meta).unwrap();
        assert_eq!(r.get_u32s("v").unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();

        // Flip one payload bit → checksum mismatch, typed.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        let reader = ArtifactReader::parse(&corrupt).unwrap();
        assert!(matches!(
            reader.section(SectionId::Meta),
            Err(ArtifactError::ChecksumMismatch { section: SectionId::Meta, .. })
        ));
    }

    #[test]
    fn framing_rejects_magic_version_truncation_and_oversize() {
        let bytes = roundtrip_section(SectionId::Meta, SectionWriter::new());
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(ArtifactReader::parse(&bad_magic), Err(ArtifactError::BadMagic { .. })));

        for v in [0u32, FORMAT_VERSION + 1, u32::MAX] {
            let mut bad_version = bytes.clone();
            bad_version[8..12].copy_from_slice(&v.to_le_bytes());
            assert!(matches!(
                ArtifactReader::parse(&bad_version),
                Err(ArtifactError::UnsupportedVersion { found }) if found == v
            ));
        }

        for cut in 0..bytes.len() {
            let err = ArtifactReader::parse(&bytes[..cut]).expect_err("truncation must fail");
            assert!(
                matches!(err, ArtifactError::BadMagic { .. } | ArtifactError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }

        let mut oversize = bytes.clone();
        oversize[20..28].copy_from_slice(&(MAX_SECTION_BYTES + 1).to_le_bytes());
        assert!(matches!(ArtifactReader::parse(&oversize), Err(ArtifactError::SectionTooLarge { .. })));

        let mut trailing = bytes;
        trailing.push(0);
        assert!(matches!(ArtifactReader::parse(&trailing), Err(ArtifactError::TrailingBytes { count: 1 })));
    }

    #[test]
    fn symbols_codec_roundtrips_every_table() {
        let (syms, _) = sample_symbols();
        let bytes = roundtrip_section(SectionId::Symbols, encode_symbols(&syms));
        let reader = ArtifactReader::parse(&bytes).unwrap();
        let mut r = reader.reader(SectionId::Symbols).unwrap();
        let back = decode_symbols(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.net_count(), syms.net_count());
        assert_eq!(back.inst_count(), syms.inst_count());
        assert_eq!(back.group_count(), syms.group_count());
        assert_eq!(back.node_count(), syms.node_count());
        for i in 0..syms.net_count() {
            assert_eq!(back.net_name(i), syms.net_name(i));
        }
        for i in 0..syms.inst_count() {
            assert_eq!(back.inst_name(i), syms.inst_name(i));
            assert_eq!(back.group_of(i), syms.group_of(i));
        }
        for g in 0..syms.group_count() as u32 {
            assert_eq!(back.group_name(g), syms.group_name(g));
            assert_eq!(back.resolve(back.group_head_sym(g)), syms.resolve(syms.group_head_sym(g)));
            assert_eq!(back.group_node(g), syms.group_node(g));
        }
        for n in 0..syms.node_count() as u32 {
            assert_eq!(back.node_name(n), syms.node_name(n));
            assert_eq!(back.node_parent(n), syms.node_parent(n));
        }
        assert_eq!(back.port_count(), syms.port_count());
        assert_eq!(back.port_net("a"), syms.port_net("a"));
        assert_eq!(back.port_net("y"), syms.port_net("y"));
        assert_eq!(back.heap_bytes(), syms.heap_bytes(), "retained layout must be preserved exactly");
    }

    #[test]
    fn lowering_codec_roundtrips_conn_and_order_without_a_build() {
        let (syms, low) = sample_symbols();
        let bytes = roundtrip_section(SectionId::Lowering, encode_lowering(&low));
        let reader = ArtifactReader::parse(&bytes).unwrap();
        let builds_before = Lowering::builds();
        let mut r = reader.reader(SectionId::Lowering).unwrap();
        let back = decode_lowering(&mut r, &syms).unwrap();
        r.finish().unwrap();
        assert_eq!(Lowering::builds(), builds_before, "decoding must not re-lower");
        assert_eq!(back.order(), low.order());
        assert_eq!(back.net_count(), low.net_count());
        assert_eq!(back.is_validated(), low.is_validated());
        assert_eq!(back.connectivity().driver, low.connectivity().driver);
        assert_eq!(back.connectivity().sinks, low.connectivity().sinks);
    }

    #[test]
    fn process_codec_is_exact() {
        let p = Process::syn40();
        let mut w = SectionWriter::new();
        put_process(&mut w, &p);
        let bytes = roundtrip_section(SectionId::Sta, w);
        let reader = ArtifactReader::parse(&bytes).unwrap();
        let mut r = reader.reader(SectionId::Sta).unwrap();
        let back = get_process(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        // A section whose vector claims u32::MAX/16 elements but holds
        // four bytes: the count check must fail without allocating.
        let mut payload = SectionWriter::new();
        payload.put_u32(MAX_ELEMENTS);
        let bytes = roundtrip_section(SectionId::Symbols, payload);
        let reader = ArtifactReader::parse(&bytes).unwrap();
        let mut r = reader.reader(SectionId::Symbols).unwrap();
        assert!(matches!(r.get_u32s("v"), Err(ArtifactError::Truncated { .. })));

        let mut payload = SectionWriter::new();
        payload.put_u32(u32::MAX);
        let bytes = roundtrip_section(SectionId::Symbols, payload);
        let reader = ArtifactReader::parse(&bytes).unwrap();
        let mut r = reader.reader(SectionId::Symbols).unwrap();
        assert!(matches!(r.get_u32s("v"), Err(ArtifactError::CountTooLarge { .. })));
    }
}
