//! # syndcim-ir — the shared compilation front end
//!
//! Every compiled analysis backend in this workspace — the bit-parallel
//! simulation engine (`syndcim-engine`), the compiled timing program
//! (`syndcim-sta`) and the compiled power program (`syndcim-power`) —
//! follows the same compile-once/evaluate-many design, and all three
//! start from the same traversal: build connectivity, levelize the
//! combinational instances, assign every net a dense slot. This crate
//! owns that traversal ([`Lowering`]) so each backend only decides what
//! to emit *per instance*, never how to walk the netlist, and so the
//! backends can share **one** lowering per compiled macro instead of
//! re-walking the module once each.
//!
//! The lowering also owns the **interned name layer** ([`Symbols`] over
//! a frozen [`Interner`]): every net, instance and group name of the
//! module is interned exactly once, and downstream compiled artifacts
//! store 4-byte [`Symbol`]s (shared `Arc` tables) instead of cloned
//! `String` tables, resolving names lazily only when a report is
//! printed. On large generated macros (≥10⁵ nets) this shrinks the
//! name footprint of the compiled trinity by well over 2× — asserted
//! by `cargo bench -p syndcim-bench --bench lowering`.
//!
//! It also hosts [`parallel_map`], the scoped-thread batch runner the
//! compiled backends use to fan independent evaluations across cores —
//! infrastructure, like the lowering, that must not force a dependency
//! on any particular backend.
//!
//! ```
//! use syndcim_ir::Lowering;
//! use syndcim_netlist::NetlistBuilder;
//! use syndcim_pdk::CellLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = CellLibrary::syn40();
//! let mut b = NetlistBuilder::new("inv", &lib);
//! let a = b.input("a");
//! let y = b.not(a);
//! b.output("y", y);
//! let m = b.finish();
//! let low = Lowering::validated(&m, &lib)?; // one traversal ...
//! assert_eq!(low.net_count(), m.net_count()); // ... shared by every backend
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod intern;
pub mod lowering;
pub mod runner;

pub use artifact::{
    ArtifactError, ArtifactMeta, ArtifactReader, ArtifactWriter, SectionId, SectionReader, SectionWriter,
};
pub use intern::{Interner, InternerBuilder, Symbol, Symbols};
pub use lowering::Lowering;
pub use runner::{default_threads, parallel_map, parallel_map_threads};
