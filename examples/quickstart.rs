//! Quickstart: specify a DCIM macro, search, implement, verify, report.
//!
//! Run with: `cargo run --release --example quickstart`
use syndcim_core::{implement, measure_int, search, MacroSpec};
use syndcim_pdk::OperatingPoint;
use syndcim_scl::Scl;
use syndcim_sim::vectors::{random_ints, seeded_rng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The specification: a 16x16, MCR=2 macro for INT1/2/4 at 500 MHz.
    let spec = MacroSpec {
        h: 16,
        w: 16,
        mcr: 2,
        int_precisions: vec![1, 2, 4],
        fp_precisions: vec![],
        f_mac_mhz: 500.0,
        f_wu_mhz: 500.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    };
    spec.validate()?;

    // 2. Multi-spec-oriented search over the subcircuit library.
    let mut scl = Scl::new();
    let result = search(&spec, &mut scl);
    println!(
        "search: {} feasible points, {} on the Pareto frontier",
        result.feasible.len(),
        result.frontier.len()
    );
    let best = result.best(&spec).expect("spec is feasible");
    println!("selected: {}", best.choice.label());

    // 3. Implementation: assembly, cleanup, SDP place, DRC, parasitics.
    let lib = scl.cell_library().clone();
    let im = implement(&lib, &spec, &best.choice)?;
    println!(
        "implemented: {} cells, {:.4} mm2, post-layout wns {:.0} ps at {} MHz",
        im.mac.module.instance_count(),
        im.area_mm2(),
        im.timing.wns_ps,
        spec.f_mac_mhz
    );

    // 4. Verified measurement: every output checked against the golden
    //    bit-serial MAC model.
    let mut rng = seeded_rng(1);
    let weights: Vec<Vec<i64>> = (0..4).map(|_| random_ints(&mut rng, 16, 4)).collect();
    let acts: Vec<Vec<i64>> = (0..4).map(|_| random_ints(&mut rng, 16, 4)).collect();
    let m = measure_int(&im, &lib, 4, &acts, &weights, OperatingPoint::at_voltage(0.9), 500.0)?;
    println!(
        "measured INT4: {} outputs verified, {:.1} TOPS/W ({:.0} TOPS/W at 1bx1b), {:.1} fJ/MAC",
        m.checked_outputs, m.tops_per_w, m.tops_per_w_1b, m.energy_per_mac_fj
    );
    Ok(())
}
