//! Silicon-style sign-off artifacts: the shmoo plot (Fig. 9) and the
//! floorplan "die photo" (Fig. 10) for a compact macro.
use syndcim_core::{implement, search, shmoo, MacroSpec};
use syndcim_layout::render_ascii;
use syndcim_scl::Scl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = MacroSpec {
        h: 16,
        w: 16,
        mcr: 2,
        int_precisions: vec![1, 2, 4],
        fp_precisions: vec![],
        f_mac_mhz: 500.0,
        f_wu_mhz: 500.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    };
    let mut scl = Scl::new();
    let res = search(&spec, &mut scl);
    let best = res.best(&spec).expect("feasible");
    let lib = scl.cell_library().clone();
    let im = implement(&lib, &spec, &best.choice)?;

    let vs: Vec<f64> = (0..=10).map(|i| 0.6 + 0.06 * i as f64).collect();
    let fs: Vec<f64> = (1..=10).map(|i| 200.0 * i as f64).collect();
    println!("shmoo ({}):\n{}", best.choice.label(), shmoo(&im, &lib, &vs, &fs).render());
    println!("floorplan ({:.4} mm2):", im.area_mm2());
    println!("{}", render_ascii(&im.mac.module, &im.placement, 80, 18));
    Ok(())
}
