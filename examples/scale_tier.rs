//! Scale tier: a generator-backed large macro (256×256, MCR 2 —
//! ~4×10⁵ nets, well past the 64×64 paper chip) lowered once and
//! compiled into the full analysis bundle, demonstrating that the
//! interned-symbol IR keeps compiled-artifact memory flat while the
//! macro grows. The matching regression gate is
//! `cargo bench -p syndcim-bench --bench lowering`.
//!
//! Phase timing comes from `syndcim-telemetry` spans instead of
//! hand-rolled `Instant` prints: the example forces collection on
//! (unless `SYNDCIM_TRACE` already chose a mode) and emits the flow
//! report at the end —
//!
//! * `SYNDCIM_TRACE=summary` (or unset): human-readable span tree +
//!   counters on stdout;
//! * `SYNDCIM_TRACE=json`: deterministic-schema JSON written to
//!   `FlowReport.json` (override with `SYNDCIM_FLOW_REPORT`), the
//!   artifact CI uploads.
//!
//! Run with `cargo run --release --example scale_tier`.

use syndcim_core::{assemble, CompiledMacro, DesignChoice, MacroSpec};
use syndcim_ir::Lowering;
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_sta::WireLoads;
use syndcim_telemetry as telemetry;

fn main() {
    if telemetry::mode() == telemetry::Mode::Off {
        telemetry::set_mode(telemetry::Mode::Summary);
    }

    let lib = CellLibrary::syn40();
    let spec = MacroSpec {
        h: 256,
        w: 256,
        mcr: 2,
        int_precisions: vec![1, 2, 4, 8],
        fp_precisions: vec![],
        f_mac_mhz: 500.0,
        f_wu_mhz: 500.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    };

    let (cm, fmax) = {
        telemetry::span!("scale_tier");

        let mac = {
            telemetry::span!("scale_tier.assemble");
            assemble(&lib, &spec, &DesignChoice::default())
        };
        let m = &mac.module;
        println!(
            "assembled 256x256 (MCR 2): {} nets, {} instances, {} groups",
            m.net_count(),
            m.instance_count(),
            m.groups.len()
        );

        // Standalone lowering first (its `lowering.*` child spans show
        // the conn/levelize/intern split), then the full bundle.
        let low = Lowering::validated(m, &lib).expect("generated macros are well-formed");
        println!("interned name layer: {:.1} MiB", low.symbols().heap_bytes() as f64 / (1 << 20) as f64);

        let cm = CompiledMacro::compile(m, &lib, &WireLoads::zero(m.net_count()))
            .expect("generated macros compile");
        println!(
            "compiled trinity: {} micro-ops, {} timing arcs, {} path nodes",
            cm.program.op_count(),
            cm.sta.arc_count(),
            cm.power.path_count()
        );

        let fmax = {
            telemetry::span!("scale_tier.sta_query");
            cm.sta.fmax_mhz(OperatingPoint::at_voltage(0.9))
        };
        println!("one STA pass over 4x10^5 nets: fmax {fmax:.0} MHz @ 0.9 V");
        (cm, fmax)
    };
    assert!(fmax > 0.0 && cm.program.net_count() > 100_000);

    let report = telemetry::snapshot();
    match telemetry::mode() {
        telemetry::Mode::Json => {
            let path = std::env::var("SYNDCIM_FLOW_REPORT").unwrap_or_else(|_| "FlowReport.json".to_string());
            std::fs::write(&path, report.to_json()).expect("write flow report");
            println!("wrote {path}");
        }
        _ => println!("\n{}", report.render()),
    }
}
