//! Scale tier: a generator-backed large macro (256×256, MCR 2 —
//! ~4×10⁵ nets, well past the 64×64 paper chip) pushed through the
//! **full** `implement` flow: assembly, netlist cleanup, one lowering,
//! symbol-keyed parallel SDP placement, sharded DRC, fused parasitic
//! extraction and post-layout sign-off. The matching regression gates
//! are `cargo bench -p syndcim-bench --bench lowering` and
//! `--bench layout`.
//!
//! Phase timing comes from `syndcim-telemetry` spans instead of
//! hand-rolled `Instant` prints: the example forces collection on
//! (unless `SYNDCIM_TRACE` already chose a mode) and emits the flow
//! report at the end —
//!
//! * `SYNDCIM_TRACE=summary` (or unset): human-readable span tree +
//!   counters on stdout;
//! * `SYNDCIM_TRACE=json`: deterministic-schema JSON written to
//!   `FlowReport.json` (override with `SYNDCIM_FLOW_REPORT`), the
//!   artifact CI uploads.
//!
//! Run with `cargo run --release --example scale_tier`.

use syndcim_core::{implement, DesignChoice, MacroSpec};
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_telemetry as telemetry;

fn main() {
    if telemetry::mode() == telemetry::Mode::Off {
        telemetry::set_mode(telemetry::Mode::Summary);
    }

    let lib = CellLibrary::syn40();
    let spec = MacroSpec {
        h: 256,
        w: 256,
        mcr: 2,
        int_precisions: vec![1, 2, 4, 8],
        fp_precisions: vec![],
        f_mac_mhz: 500.0,
        f_wu_mhz: 500.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    };

    let (im, fmax) = {
        telemetry::span!("scale_tier");

        // Full flow: assemble → optimize → lower → place → DRC → extract
        // → compile → sign-off. A clean return *is* the DRC/LVS verdict.
        let im = implement(&lib, &spec, &DesignChoice::default()).expect("scale-tier implement");
        let m = &im.mac.module;
        println!(
            "implemented 256x256 (MCR 2): {} nets, {} instances, {} groups",
            m.net_count(),
            m.instance_count(),
            m.groups.len()
        );
        println!(
            "placement: die {:.0}x{:.0} um ({:.3} mm2), {} regions, utilization {:.0}%, DRC clean",
            im.placement.die.w_um,
            im.placement.die.h_um,
            im.area_mm2(),
            im.placement.regions.len(),
            im.placement.utilization * 100.0
        );
        println!(
            "extraction: {:.1} m total wire, compiled trinity: {} micro-ops, {} timing arcs, {} path nodes",
            im.wires.total_wirelength_um * 1e-6,
            im.compiled.program.op_count(),
            im.compiled.sta.arc_count(),
            im.compiled.power.path_count()
        );

        let fmax = {
            telemetry::span!("scale_tier.sta_query");
            im.fmax_mhz(&lib, OperatingPoint::at_voltage(0.9))
        };
        println!("post-layout sign-off over 4x10^5 nets: fmax {fmax:.0} MHz @ 0.9 V");
        (im, fmax)
    };
    assert!(fmax > 0.0 && im.mac.module.net_count() > 100_000);

    let report = telemetry::snapshot();
    match telemetry::mode() {
        telemetry::Mode::Json => {
            let path = std::env::var("SYNDCIM_FLOW_REPORT").unwrap_or_else(|_| "FlowReport.json".to_string());
            std::fs::write(&path, report.to_json()).expect("write flow report");
            println!("wrote {path}");
        }
        _ => println!("\n{}", report.render()),
    }
}
