//! Scale tier: a generator-backed large macro (256×256, MCR 2 —
//! ~4×10⁵ nets, well past the 64×64 paper chip) lowered once and
//! compiled into the full analysis bundle, demonstrating that the
//! interned-symbol IR keeps compiled-artifact memory flat while the
//! macro grows. The matching regression gate is
//! `cargo bench -p syndcim-bench --bench lowering`.
//!
//! Run with `cargo run --release --example scale_tier`.

use std::time::Instant;

use syndcim_core::{assemble, CompiledMacro, DesignChoice, MacroSpec};
use syndcim_ir::Lowering;
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_sta::WireLoads;

fn main() {
    let lib = CellLibrary::syn40();
    let spec = MacroSpec {
        h: 256,
        w: 256,
        mcr: 2,
        int_precisions: vec![1, 2, 4, 8],
        fp_precisions: vec![],
        f_mac_mhz: 500.0,
        f_wu_mhz: 500.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    };

    let t = Instant::now();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let m = &mac.module;
    println!(
        "assemble 256x256 (MCR 2): {:>8.1?}  — {} nets, {} instances, {} groups",
        t.elapsed(),
        m.net_count(),
        m.instance_count(),
        m.groups.len()
    );

    let t = Instant::now();
    let low = Lowering::validated(m, &lib).expect("generated macros are well-formed");
    println!(
        "lowering (conn + levelize + intern): {:>8.1?}  — interned name layer {:.1} MiB",
        t.elapsed(),
        low.symbols().heap_bytes() as f64 / (1 << 20) as f64
    );

    let t = Instant::now();
    let cm =
        CompiledMacro::compile(m, &lib, &WireLoads::zero(m.net_count())).expect("generated macros compile");
    println!(
        "compiled trinity (sim + STA + power):{:>8.1?}  — {} micro-ops, {} timing arcs, {} path nodes",
        t.elapsed(),
        cm.program.op_count(),
        cm.sta.arc_count(),
        cm.power.path_count()
    );

    let t = Instant::now();
    let fmax = cm.sta.fmax_mhz(OperatingPoint::at_voltage(0.9));
    println!("one STA pass over 4×10⁵ nets:        {:>8.1?}  — fmax {:.0} MHz @ 0.9 V", t.elapsed(), fmax);
}
