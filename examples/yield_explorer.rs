//! Yield explorer: Monte-Carlo variation and fault injection on the
//! 64×64 paper test chip.
//!
//! Two robustness views of one implemented macro:
//!
//! 1. **Variation-aware shmoo** — every engine lane becomes a virtual
//!    die with its own gate-delay multiplier sampled from a gaussian
//!    process model; the (V, f) grid reports the *fraction* of dies
//!    passing at each point instead of a single pass/fail bit, so the
//!    classic shmoo wall opens into a yield band.
//! 2. **Fault-coverage campaign** — stuck-at and transient-flip faults
//!    injected into individual lanes of one weight-update run (lane 0
//!    stays golden); the report says which faults a write-readback
//!    test detects and what the surviving escapes cost in energy.
//!
//! Output follows the flow-report convention:
//!
//! * `SYNDCIM_TRACE=summary` (or unset): rendered yield bands +
//!   campaign table + telemetry summary on stdout;
//! * `SYNDCIM_TRACE=json`: deterministic-schema JSON written to
//!   `YieldReport.json` (override with `SYNDCIM_YIELD_REPORT`), the
//!   artifact CI uploads.
//!
//! Run with `cargo run --release --example yield_explorer`.

use syndcim_core::{
    implement, measure_weight_update_coverage, port_net, DesignChoice, FaultKind, MacroSpec, VariationModel,
    YieldReport,
};
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_telemetry as telemetry;

fn main() {
    if telemetry::mode() == telemetry::Mode::Off {
        telemetry::set_mode(telemetry::Mode::Summary);
    }

    let lib = CellLibrary::syn40();
    let spec = MacroSpec::paper_test_chip();
    let im = {
        telemetry::span!("yield_explorer.implement");
        implement(&lib, &spec, &DesignChoice::default()).expect("paper test chip implements")
    };

    // --- Monte-Carlo yield band -------------------------------------
    let voltages: Vec<f64> = (0..8).map(|i| 0.55 + 0.1 * i as f64).collect();
    let freqs: Vec<f64> = (1..=10).map(|i| i as f64 * 150.0).collect();
    let model = VariationModel::gaussian(0.08);
    let samples = 128;
    let report = {
        telemetry::span!("yield_explorer.shmoo_yield");
        YieldReport::generate(&im, &voltages, &freqs, model, samples, 0xD1CE)
            .expect("axes and sample count are valid")
    };
    println!(
        "yield shmoo: {} dies/point, sigma {:.2} ({} voltages x {} frequencies in one batch)",
        samples,
        model.sigma,
        voltages.len(),
        freqs.len()
    );
    println!("{}", report.shmoo.render());
    for (min_yield, label) in [(1.0, "100%"), (0.5, "50%")] {
        let vi = voltages.len() - 1;
        match report.shmoo.fmax_at_yield(vi, min_yield) {
            Some(f) => println!("  fmax @ {:.2} V at {label} yield: {f:.0} MHz", voltages[vi]),
            None => println!("  no frequency yields {label} at {:.2} V", voltages[vi]),
        }
    }

    // --- fault-coverage campaign ------------------------------------
    let op = OperatingPoint::at_voltage(0.9);
    let writes = (spec.h * spec.mcr) as u64;
    let campaign: Vec<(&str, FaultKind)> = vec![
        ("wbl[0]", FaultKind::StuckAt0),
        ("wbl[1]", FaultKind::StuckAt1),
        ("wbl[31]", FaultKind::StuckAt0),
        ("wbl[63]", FaultKind::StuckAt1),
        ("wbl[2]", FaultKind::FlipAtCycle(0)),
        ("wbl[2]", FaultKind::FlipAtCycle(writes / 2)),
        ("wbl[2]", FaultKind::FlipAtCycle(writes + 64)), // after the burst: can't be stored
        ("act[0]", FaultKind::StuckAt1),                 // MAC path: invisible to a write-readback
        ("neg", FaultKind::StuckAt0),                    // already low during weight updates
    ];
    let faults: Vec<_> = campaign
        .iter()
        .map(|&(port, kind)| (port_net(&im, port).expect("campaign targets existing ports"), kind))
        .collect();
    let coverage = {
        telemetry::span!("yield_explorer.fault_coverage");
        measure_weight_update_coverage(&im, op, 400.0, 99, &faults).expect("campaign fits the engine lanes")
    };
    println!(
        "fault campaign: {}/{} detected ({:.0}% coverage), {} bits written per lane",
        coverage.detected,
        coverage.injected,
        coverage.coverage() * 100.0,
        coverage.bits_written
    );
    for &i in &coverage.survivors {
        let (port, kind) = campaign[i];
        println!("  survivor: {kind:?} on `{port}`");
    }
    println!(
        "  write energy: golden {:.2} fJ/bit, survivors {:.2} ± {:.2} fJ/bit",
        coverage.golden_energy_per_bit_fj,
        coverage.survivor_energy_per_bit_fj,
        coverage.survivor_energy_per_bit_std_fj
    );
    assert!(coverage.detected >= 5, "stuck/flipped write bitlines must be caught");
    assert!(!coverage.survivors.is_empty(), "the campaign includes undetectable faults by design");

    match telemetry::mode() {
        telemetry::Mode::Json => {
            let path =
                std::env::var("SYNDCIM_YIELD_REPORT").unwrap_or_else(|_| "YieldReport.json".to_string());
            let json = format!(
                "{{\"schema\":\"syndcim-yield-explorer-v1\",\"yield\":{},\"fault_coverage\":{}}}\n",
                report.to_json(),
                coverage.to_json()
            );
            std::fs::write(&path, json).expect("write yield report");
            println!("wrote {path}");
        }
        _ => println!("\n{}", telemetry::snapshot().render()),
    }
}
