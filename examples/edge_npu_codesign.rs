//! Edge-NPU co-design: a wearable-device accelerator wants the most
//! energy-efficient INT4 macro that still sustains 200 MHz at 0.7 V —
//! the "different acceleration scenarios need different optimizations"
//! story from the paper's introduction. Sweeps MCR and compares the
//! energy- vs area-leaning Pareto picks.
use syndcim_core::{implement, measure_int, search, MacroSpec, PpaWeights};
use syndcim_pdk::OperatingPoint;
use syndcim_scl::Scl;
use syndcim_sim::vectors::{ints_with_bit_density, seeded_rng, sparse_ints};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("wearable NPU: INT4, 200 MHz @ 0.7 V, sparse keyword-spotting workload\n");
    println!(
        "{:<6}{:<44}{:>10}{:>12}{:>14}",
        "MCR", "selected design", "area mm2", "power uW", "TOPS/W (1b)"
    );
    let mut rng = seeded_rng(3);
    for mcr in [1usize, 2, 4] {
        let spec = MacroSpec {
            h: 32,
            w: 32,
            mcr,
            int_precisions: vec![1, 2, 4],
            fp_precisions: vec![],
            f_mac_mhz: 200.0,
            f_wu_mhz: 200.0,
            vdd_v: 0.7,
            ppa: PpaWeights::energy_leaning(),
        };
        let mut scl = Scl::new();
        let res = search(&spec, &mut scl);
        let Some(best) = res.best(&spec) else {
            println!("{:<6}infeasible", mcr);
            continue;
        };
        let lib = scl.cell_library().clone();
        let im = implement(&lib, &spec, &best.choice)?;
        // Keyword spotting: very sparse activations, half-zero weights.
        let weights: Vec<Vec<i64>> = (0..8).map(|_| sparse_ints(&mut rng, 32, 4, 0.5)).collect();
        let acts: Vec<Vec<i64>> = (0..4).map(|_| ints_with_bit_density(&mut rng, 32, 4, 0.125)).collect();
        let m = measure_int(&im, &lib, 4, &acts, &weights, OperatingPoint::at_voltage(0.7), 200.0)?;
        println!(
            "{:<6}{:<44}{:>10.4}{:>12.0}{:>14.0}",
            mcr,
            best.choice.label(),
            im.area_mm2(),
            m.power.total_uw(),
            m.tops_per_w_1b
        );
    }
    println!("\nhigher MCR buys on-macro weight capacity (fewer off-macro reloads) at some area/energy cost");
    Ok(())
}
