//! Cloud-accelerator Pareto exploration: one spec, many valid answers.
//! Shows the full searched frontier for the paper's test-chip spec and
//! how the PPA preference weights pick different corners (Fig. 8 story).
use syndcim_core::{search, MacroSpec, PpaWeights};
use syndcim_scl::Scl;

fn main() {
    let spec = MacroSpec::paper_test_chip();
    let mut scl = Scl::new();
    let res = search(&spec, &mut scl);
    println!("spec: H=W=64, MCR=2, INT4/8+FP4/8, 800 MHz @0.9V");
    println!("frontier ({} points of {} feasible):\n", res.frontier.len(), res.feasible.len());
    println!("{:<56}{:>12}{:>12}{:>9}", "design", "power uW", "area um2", "latency");
    for p in &res.frontier {
        println!(
            "{:<56}{:>12.0}{:>12.0}{:>9}",
            p.choice.label(),
            p.est.power_uw,
            p.est.area_um2,
            p.est.latency_cycles
        );
    }
    for (name, ppa) in [
        ("energy-leaning pick", PpaWeights::energy_leaning()),
        ("balanced pick", PpaWeights::default()),
        ("area-leaning pick", PpaWeights::area_leaning()),
    ] {
        let mut s = spec.clone();
        s.ppa = ppa;
        let b = res.best(&s).unwrap();
        println!("\n{name}: {} ({:.0} uW, {:.0} um2)", b.choice.label(), b.est.power_uw, b.est.area_um2);
    }
}
